//! The UDM lint rules.
//!
//! | id | rule |
//! |---|---|
//! | UDM001 | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in non-test library code |
//! | UDM002 | no bare `==`/`!=` against float expressions outside test code |
//! | UDM003 | `sqrt` of variance-like expressions must use `udm_core::num::clamped_sqrt` |
//! | UDM004 | no lossy `as` casts in hot-path modules |
//! | UDM005 | public estimator entry points must validate finite inputs |
//! | UDM006 | `span!` guards must be bound to a named variable |
//! | UDM007 | closures at parallel seams must not capture mutable shared state |
//! | UDM008 | `fast-math`-gated items unreachable from default-feature code |
//! | UDM009 | once-init closures must be deterministic |
//! | UDM010 | every `unsafe` block needs an adjacent `// SAFETY:` comment |
//!
//! UDM001–UDM004, UDM006 and UDM010 are token rules (they also run on
//! the lexer-only fallback path). UDM005, UDM007 and UDM009 live in
//! [`crate::astrules`]; UDM008 is the cross-file pass in
//! [`crate::callgraph`].

use crate::context::FileContext;
use crate::lexer::{Lexed, Tok, TokKind};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule id (`UDM001` … `UDM006`).
    pub rule: &'static str,
    /// Root-relative path of the offending file.
    pub path: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Byte offset of the anchoring token (for waiver/fix mapping).
    pub offset: usize,
}

/// All rule ids, in order.
pub const ALL_RULES: [&str; 10] = [
    "UDM001", "UDM002", "UDM003", "UDM004", "UDM005", "UDM006", "UDM007", "UDM008", "UDM009",
    "UDM010",
];

/// One-line description per rule id (drives `--format json`/`sarif`).
pub const RULE_INFO: [(&str, &str); 10] = [
    (
        "UDM001",
        "no unwrap/expect/panic!/todo!/unimplemented! in non-test library code",
    ),
    (
        "UDM002",
        "no bare ==/!= against float expressions outside test code",
    ),
    (
        "UDM003",
        "sqrt of variance-like expressions must use udm_core::num::clamped_sqrt",
    ),
    ("UDM004", "no lossy `as` casts in hot-path modules"),
    (
        "UDM005",
        "public estimator entry points must validate finite inputs",
    ),
    ("UDM006", "span! guards must be bound to a named variable"),
    (
        "UDM007",
        "closures at parallel seams must not capture mutable or non-atomic shared state",
    ),
    (
        "UDM008",
        "fast-math-gated items must be unreachable from default-feature code",
    ),
    (
        "UDM009",
        "OnceLock/OnceCell/Lazy init closures must be deterministic",
    ),
    (
        "UDM010",
        "every unsafe block requires an adjacent // SAFETY: comment",
    ),
];

/// Runs every *token* rule over one lexed file. With `ast_rules_active`
/// the UDM005 token implementation is skipped (the scope-aware port in
/// [`crate::astrules`] replaces it); on the lexer fallback path it runs
/// here so the rule never goes dark.
pub fn run_token_rules(
    lexed: &Lexed,
    ctx: &FileContext,
    ast_rules_active: bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    udm001_no_panics(lexed, ctx, &mut out);
    udm002_float_eq(lexed, ctx, &mut out);
    udm003_variance_sqrt(lexed, ctx, &mut out);
    udm004_lossy_casts(lexed, ctx, &mut out);
    if !ast_rules_active {
        udm005_entry_validation(lexed, ctx, &mut out);
    }
    udm006_span_binding(lexed, ctx, &mut out);
    udm010_unsafe_safety_comment(lexed, ctx, &mut out);
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

/// Runs every token rule (legacy entry point, UDM005 included).
pub fn run_all(lexed: &Lexed, ctx: &FileContext) -> Vec<Diagnostic> {
    run_token_rules(lexed, ctx, false)
}

fn diag(
    out: &mut Vec<Diagnostic>,
    rule: &'static str,
    ctx: &FileContext,
    tok: &Tok,
    message: String,
) {
    out.push(Diagnostic {
        rule,
        path: ctx.rel_path.clone(),
        line: tok.line,
        message,
        offset: tok.start,
    });
}

/// UDM001: panicking constructs in non-test code of library crates.
fn udm001_no_panics(lexed: &Lexed, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !ctx.is_library {
        return;
    }
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.in_test(t.start) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct(".");
        let next = toks.get(i + 1);
        match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next.is_some_and(|n| n.is_punct("(")) => {
                diag(
                    out,
                    "UDM001",
                    ctx,
                    t,
                    format!(
                        ".{}() in non-test library code; return a typed Result \
                         (or waive with an invariant comment)",
                        t.text
                    ),
                );
            }
            "panic" | "todo" | "unimplemented" if next.is_some_and(|n| n.is_punct("!")) => {
                diag(
                    out,
                    "UDM001",
                    ctx,
                    t,
                    format!("{}! in non-test library code; return a typed error", t.text),
                );
            }
            _ => {}
        }
    }
}

/// Tokens that terminate an operand scan at depth 0.
fn is_operand_boundary(t: &Tok) -> bool {
    t.is_punct(";")
        || t.is_punct(",")
        || t.is_punct("{")
        || t.is_punct("}")
        || t.is_punct("&&")
        || t.is_punct("||")
        || t.is_punct("=")
        || t.is_punct("?")
        || t.is_punct("=>")
        || t.is_ident("if")
        || t.is_ident("while")
        || t.is_ident("return")
        || t.is_ident("let")
        || t.is_ident("else")
        || t.is_ident("match")
}

/// Collects operand tokens right of index `i` (exclusive) until a
/// boundary; respects parenthesis depth.
fn operand_right(toks: &[Tok], i: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(i + 1).take(24) {
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if depth == 0 && is_operand_boundary(t) {
            break;
        }
        out.push(j);
    }
    out
}

/// Collects operand tokens left of index `i` (exclusive) until a
/// boundary; respects parenthesis depth.
fn operand_left(toks: &[Tok], i: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    for j in (0..i).rev().take(24) {
        let t = &toks[j];
        if t.is_punct(")") || t.is_punct("]") {
            depth += 1;
        } else if t.is_punct("(") || t.is_punct("[") {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if depth == 0 && is_operand_boundary(t) {
            break;
        }
        out.push(j);
    }
    out.reverse();
    out
}

/// UDM002: `==`/`!=` where either operand contains a float literal.
fn udm002_float_eq(lexed: &Lexed, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) || ctx.in_test(t.start) {
            continue;
        }
        let sides: Vec<usize> = operand_left(toks, i)
            .into_iter()
            .chain(operand_right(toks, i))
            .collect();
        // `.fract() == 0.0` is the IEEE-exact integer-ness test: fract()
        // returns exactly 0.0 for integral inputs, so bare equality is
        // correct there.
        if sides.iter().any(|&j| toks[j].is_ident("fract")) {
            continue;
        }
        if sides.iter().any(|&j| toks[j].is_float_literal()) {
            diag(
                out,
                "UDM002",
                ctx,
                t,
                format!(
                    "bare `{}` against a float literal; use \
                     udm_core::num::approx_eq (or waive an exact-zero guard)",
                    t.text
                ),
            );
        }
    }
}

/// Identifier looks like it names a variance / squared quantity.
fn is_variance_like(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("var")
        || lower.ends_with("_sq")
        || matches!(
            lower.as_str(),
            "dsq" | "ssq" | "msq" | "m2" | "delta2" | "mean_sq_err"
        )
}

/// UDM003: `.sqrt()` whose receiver is variance-like (named so, or a
/// parenthesised expression containing a binary minus — the classic
/// catastrophic-cancellation shape `(a - b).sqrt()`).
fn udm003_variance_sqrt(lexed: &Lexed, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !ctx.is_library {
        return;
    }
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("sqrt")
            || i == 0
            || !toks[i - 1].is_punct(".")
            || !toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            || ctx.in_test(t.start)
        {
            continue;
        }
        let Some(recv_end) = i.checked_sub(2) else {
            continue;
        };
        let mut var_named = false;
        let mut paren_minus = false;
        if toks[recv_end].is_punct(")") {
            // Receiver is a parenthesised / call expression: scan back to
            // the matching `(` and inspect the inside.
            let mut depth = 0i32;
            let mut j = recv_end;
            loop {
                let tk = &toks[j];
                if tk.is_punct(")") || tk.is_punct("]") {
                    depth += 1;
                } else if tk.is_punct("(") || tk.is_punct("[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            let open = j;
            // Method/function name before the `(`, if any, counts too.
            let names =
                (open.saturating_sub(2)..recv_end).filter(|&k| toks[k].kind == TokKind::Ident);
            var_named = names.into_iter().any(|k| is_variance_like(&toks[k].text));
            // A bare parenthesised group `( … - … )` (no call name) with a
            // binary minus at depth 1 is the cancellation shape.
            let is_bare_group = open == 0
                || !(toks[open - 1].kind == TokKind::Ident || toks[open - 1].is_punct(")"));
            if is_bare_group {
                let mut depth = 0i32;
                for k in open..=recv_end {
                    let tk = &toks[k];
                    if tk.is_punct("(") || tk.is_punct("[") {
                        depth += 1;
                    } else if tk.is_punct(")") || tk.is_punct("]") {
                        depth -= 1;
                    } else if depth == 1
                        && tk.is_punct("-")
                        && k > open + 1
                        && (toks[k - 1].kind == TokKind::Ident
                            || toks[k - 1].kind == TokKind::Number
                            || toks[k - 1].is_punct(")"))
                    {
                        paren_minus = true;
                    }
                }
            }
        } else {
            // Receiver is a field/ident chain: walk `a.b.c` backwards.
            let mut j = recv_end;
            loop {
                let tk = &toks[j];
                if tk.kind == TokKind::Ident && is_variance_like(&tk.text) {
                    var_named = true;
                }
                if j >= 1 && (toks[j - 1].is_punct(".") || toks[j - 1].is_punct("::")) {
                    j = j.saturating_sub(2);
                } else {
                    break;
                }
            }
        }
        if var_named || paren_minus {
            diag(
                out,
                "UDM003",
                ctx,
                t,
                "sqrt of a variance-like expression; route through \
                 udm_core::num::clamped_sqrt (bit-identical for x >= 0, \
                 counts negative clamps)"
                    .to_string(),
            );
        }
    }
}

/// Numeric cast targets that can silently lose information from the
/// workspace's `f64`/`u64`/`usize` quantities.
fn is_lossy_cast_target(name: &str) -> bool {
    matches!(
        name,
        "f64"
            | "f32"
            | "usize"
            | "isize"
            | "u64"
            | "i64"
            | "u32"
            | "i32"
            | "u16"
            | "i16"
            | "u8"
            | "i8"
    )
}

/// UDM004: `as` casts to numeric types in hot-path modules. `u64 as
/// f64` silently rounds above 2^53; `f64 as usize` saturates — the
/// hot paths must use the checked helpers in `udm_core::num`.
fn udm004_lossy_casts(lexed: &Lexed, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !ctx.is_hot_path {
        return;
    }
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("as") || ctx.in_test(t.start) {
            continue;
        }
        // `as` in a use statement (`use x as y`) has a non-type RHS; only
        // numeric targets are flagged, which excludes those renames.
        if let Some(next) = toks.get(i + 1) {
            if next.kind == TokKind::Ident && is_lossy_cast_target(&next.text) {
                diag(
                    out,
                    "UDM004",
                    ctx,
                    t,
                    format!(
                        "`as {}` cast in a hot-path module; use the checked \
                         conversions in udm_core::num (f64_from_count, \
                         f64_from_usize, usize::try_from)",
                        next.text
                    ),
                );
            }
        }
    }
}

/// Guard identifiers that count as input validation for UDM005.
const GUARD_IDENTS: [&str; 6] = [
    "ensure_finite_slice",
    "ensure_finite_slice_opt",
    "ensure_finite",
    "ensure_non_negative",
    "debug_assert_finite",
    "is_finite",
];

/// UDM005: `pub fn density*` / `pub fn classify*` — and the serve-layer
/// request handlers `pub fn handle_*density*` / `pub fn handle_*classify*`
/// — taking `f64` data must validate finiteness or delegate to an entry
/// point that does.
fn udm005_entry_validation(lexed: &Lexed, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !ctx.is_library {
        return;
    }
    let toks = &lexed.toks;
    let mut i = 0;
    while i + 2 < toks.len() {
        // Bare `pub fn` only: `pub(crate)` etc. are not public API.
        if !(toks[i].is_ident("pub") && toks[i + 1].is_ident("fn")) {
            i += 1;
            continue;
        }
        let name_tok = &toks[i + 2];
        let name = name_tok.text.clone();
        i += 3;
        let is_entry = name.starts_with("density")
            || name.starts_with("classify")
            || (name.starts_with("handle_")
                && (name.contains("density") || name.contains("classify")));
        if !is_entry || ctx.in_test(name_tok.start) {
            continue;
        }
        // Parameter list: from the next `(` to its match.
        let Some(open) = (i..toks.len()).find(|&k| toks[k].is_punct("(")) else {
            continue;
        };
        let mut depth = 0i32;
        let mut close = open;
        for (k, t) in toks.iter().enumerate().skip(open) {
            if t.is_punct("(") {
                depth += 1;
            } else if t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
        }
        let takes_floats = toks[open..=close]
            .iter()
            .any(|t| t.is_ident("f64") || t.is_ident("UncertainPoint"));
        if !takes_floats {
            continue;
        }
        // Body: next `{` (skipping the return type) to its match; a `;`
        // first means a trait signature without a body.
        let mut k = close + 1;
        while k < toks.len() && !toks[k].is_punct("{") && !toks[k].is_punct(";") {
            k += 1;
        }
        if k >= toks.len() || toks[k].is_punct(";") {
            continue;
        }
        let body_open = k;
        let mut depth = 0i32;
        let mut body_close = body_open;
        for (k, t) in toks.iter().enumerate().skip(body_open) {
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    body_close = k;
                    break;
                }
            }
        }
        let body = &toks[body_open..=body_close];
        let validates = body
            .iter()
            .any(|t| t.kind == TokKind::Ident && GUARD_IDENTS.contains(&t.text.as_str()));
        // Delegation: calling another density*/classify*/log_scores entry
        // point passes the obligation down to it.
        let delegates = body.iter().any(|t| {
            t.kind == TokKind::Ident
                && t.text != name
                && (t.text.starts_with("density")
                    || t.text.starts_with("classify")
                    || t.text == "log_scores")
        });
        if !validates && !delegates {
            out.push(Diagnostic {
                rule: "UDM005",
                path: ctx.rel_path.clone(),
                line: name_tok.line,
                message: format!(
                    "public estimator entry point `{name}` takes float input \
                     but neither validates finiteness (udm_core::num::ensure_finite_slice) \
                     nor delegates to a validating entry point"
                ),
                offset: name_tok.start,
            });
        }
        i = body_close + 1;
    }
}

/// UDM006: `span!` guards must be bound to a named variable. Both
/// `let _ = span!(..)` and a bare `span!(..);` statement drop the RAII
/// guard at once, closing the span before the work it was meant to
/// cover has run — the profile then credits the phase ~zero time.
fn udm006_span_binding(lexed: &Lexed, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !ctx.is_library {
        return;
    }
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("span")
            || !toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            || ctx.in_test(t.start)
        {
            continue;
        }
        // Walk back over a `udm_observe::` / `$crate::` path prefix so the
        // token before the whole macro path is inspected.
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        let discarded = if j == 0 {
            // The macro call opens the file: statement position.
            true
        } else {
            let prev = &toks[j - 1];
            if prev.is_punct("=") {
                // Wildcard binding `let _ = span!(..)` drops the guard;
                // any named pattern (`let _fit = …`) keeps it alive.
                j >= 3 && toks[j - 2].is_ident("_") && toks[j - 3].is_ident("let")
            } else {
                // Statement position: the guard temporary drops at the `;`.
                prev.is_punct(";") || prev.is_punct("{") || prev.is_punct("}")
            }
        };
        if discarded {
            diag(
                out,
                "UDM006",
                ctx,
                t,
                "span! guard dropped immediately; bind it to a named variable \
                 (`let _guard = span!(..);`) so the span covers its scope"
                    .to_string(),
            );
        }
    }
}

/// UDM010: every `unsafe { .. }` block needs a `// SAFETY:` comment on
/// the same line or in the contiguous comment run directly above it.
/// `unsafe fn` / `unsafe impl` / `unsafe trait` declare an obligation
/// rather than discharging one and are exempt; this is a token rule so
/// it keeps working on the lexer fallback path.
fn udm010_unsafe_safety_comment(lexed: &Lexed, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") || ctx.in_test(t.start) {
            continue;
        }
        // Only `unsafe {` blocks; `unsafe fn`/`impl`/`trait` are exempt.
        if !toks.get(i + 1).is_some_and(|n| n.is_punct("{")) {
            continue;
        }
        if has_adjacent_safety_comment(lexed, t.line) {
            continue;
        }
        diag(
            out,
            "UDM010",
            ctx,
            t,
            "unsafe block without an adjacent `// SAFETY:` comment; justify \
             why the invariants hold (or hoist the block behind a safe API)"
                .to_string(),
        );
    }
}

/// True when a comment containing `SAFETY:` sits on `line` itself or in
/// the unbroken run of comment lines directly above it.
fn has_adjacent_safety_comment(lexed: &Lexed, line: usize) -> bool {
    let has_safety_on = |l: usize| {
        lexed
            .comments
            .iter()
            .any(|c| c.line == l && c.text.contains("SAFETY:"))
    };
    let has_comment_on = |l: usize| lexed.comments.iter().any(|c| c.line == l);
    if has_safety_on(line) {
        return true;
    }
    let mut l = line;
    while l > 1 && has_comment_on(l - 1) {
        l -= 1;
        if has_safety_on(l) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let l = lex(src);
        let ctx = FileContext::new("fixture.rs", &l, true);
        run_all(&l, &ctx)
    }

    fn rules_of(ds: &[Diagnostic]) -> Vec<&'static str> {
        ds.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn udm001_catches_all_panicking_forms() {
        let ds = lint(
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); todo!(); unimplemented!(); }",
        );
        assert_eq!(ds.iter().filter(|d| d.rule == "UDM001").count(), 5);
    }

    #[test]
    fn udm001_ignores_unwrap_or_variants() {
        let ds =
            lint("fn f() { x.unwrap_or(0.0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }");
        assert!(!rules_of(&ds).contains(&"UDM001"));
    }

    #[test]
    fn udm001_skips_test_modules() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        let l = lex(src);
        let ctx = FileContext::new("crates/core/src/f.rs", &l, false);
        assert!(run_all(&l, &ctx).is_empty());
    }

    #[test]
    fn udm002_flags_float_comparisons() {
        let ds = lint("fn f(x: f64) -> bool { x == 0.0 }");
        assert!(rules_of(&ds).contains(&"UDM002"));
        let ds = lint("fn f(x: f64) -> bool { 1.5 != x }");
        assert!(rules_of(&ds).contains(&"UDM002"));
    }

    #[test]
    fn udm002_ignores_integer_comparisons() {
        let ds = lint("fn f(n: usize) -> bool { n == 0 && n != 3 }");
        assert!(!rules_of(&ds).contains(&"UDM002"));
    }

    #[test]
    fn udm002_operand_scan_stops_at_boundaries() {
        // The float literal is in a *different* clause.
        let ds = lint("fn f(n: usize, x: f64) -> bool { n == 0 && x < 1.5 }");
        assert!(!rules_of(&ds).contains(&"UDM002"));
    }

    #[test]
    fn udm003_flags_variance_sqrt() {
        for src in [
            "fn f(var: f64) -> f64 { var.sqrt() }",
            "fn f(&self) -> f64 { self.variance(j).sqrt() }",
            "fn f(a: f64, b: f64) -> f64 { (a - b).sqrt() }",
            "fn f(&self) -> f64 { self.m2.sqrt() }",
        ] {
            assert!(rules_of(&lint(src)).contains(&"UDM003"), "{src}");
        }
    }

    #[test]
    fn udm003_allows_benign_sqrt() {
        for src in [
            "fn f(x: f64) -> f64 { x.sqrt() }",
            "fn f(sum: f64, n: f64) -> f64 { (sum / n).sqrt() }",
            "fn f(h: f64, psi: f64) -> f64 { (h * h + psi * psi).sqrt() }",
        ] {
            assert!(!rules_of(&lint(src)).contains(&"UDM003"), "{src}");
        }
    }

    #[test]
    fn udm004_flags_numeric_casts() {
        let ds = lint("fn f(n: u64) -> f64 { n as f64 }");
        assert!(rules_of(&ds).contains(&"UDM004"));
        let ds = lint("fn f(x: f64) -> usize { x as usize }");
        assert!(rules_of(&ds).contains(&"UDM004"));
    }

    #[test]
    fn udm004_ignores_use_renames_and_non_hot_files() {
        let ds = lint("use std::io::Result as IoResult;");
        assert!(!rules_of(&ds).contains(&"UDM004"));
        let src = "fn f(n: u64) -> f64 { n as f64 }";
        let l = lex(src);
        let ctx = FileContext::new("crates/kde/src/bandwidth.rs", &l, false);
        assert!(!rules_of(&run_all(&l, &ctx)).contains(&"UDM004"));
    }

    #[test]
    fn udm005_flags_unvalidated_entry_point() {
        let src = "pub fn density(&self, x: &[f64]) -> f64 { self.sum(x) }";
        assert!(rules_of(&lint(src)).contains(&"UDM005"));
    }

    #[test]
    fn udm005_accepts_guards_and_delegation() {
        for src in [
            "pub fn density(&self, x: &[f64]) -> f64 { ensure_finite_slice(\"q\", x)?; self.sum(x) }",
            "pub fn density(&self, x: &[f64]) -> f64 { self.density_subspace(x, s) }",
            "pub fn classify(&self, x: &UncertainPoint) -> L { self.log_scores(x) }",
            "pub fn density_meta(&self) -> usize { 3 }",
        ] {
            assert!(!rules_of(&lint(src)).contains(&"UDM005"), "{src}");
        }
    }

    #[test]
    fn udm006_flags_discarded_span_guards() {
        for src in [
            "fn f() { let _ = udm_observe::span!(\"fit\"); work(); }",
            "fn f() { let _ = span!(\"fit\"); work(); }",
            "fn f() { udm_observe::span!(\"fit\"); work(); }",
            "fn f() { work(); span!(\"fit\"); more(); }",
        ] {
            assert!(rules_of(&lint(src)).contains(&"UDM006"), "{src}");
        }
    }

    #[test]
    fn udm002_fract_zero_test_is_exempt() {
        let ds = lint("fn f(x: f64) -> bool { x.fract() == 0.0 }");
        assert!(!rules_of(&ds).contains(&"UDM002"));
        let ds = lint("fn f(x: f64) -> bool { 0.0 != x.fract() }");
        assert!(!rules_of(&ds).contains(&"UDM002"));
    }

    #[test]
    fn udm010_flags_uncommented_unsafe_blocks() {
        for src in [
            "fn f(p: *mut f64) { unsafe { *p = 1.0; } }",
            "fn f(p: *mut f64) {\n    // fast path\n    unsafe { *p = 1.0; }\n}",
        ] {
            assert!(rules_of(&lint(src)).contains(&"UDM010"), "{src}");
        }
    }

    #[test]
    fn udm010_accepts_safety_comments_and_unsafe_items() {
        for src in [
            "fn f(p: *mut f64) {\n    // SAFETY: p is valid for writes per the caller contract.\n    unsafe { *p = 1.0; }\n}",
            "fn f(p: *mut f64) { unsafe { *p = 1.0; } // SAFETY: caller contract\n}",
            "fn f(p: *mut f64) {\n    // SAFETY: p valid,\n    // and aligned.\n    unsafe { *p = 1.0; }\n}",
            "unsafe fn raw(p: *mut f64) {}",
            "unsafe impl Send for S {}",
        ] {
            assert!(!rules_of(&lint(src)).contains(&"UDM010"), "{src}");
        }
    }

    #[test]
    fn udm006_accepts_named_guards() {
        for src in [
            "fn f() { let _guard = udm_observe::span!(\"fit\"); work(); }",
            "fn f() { let _span_fit = span!(\"fit\"); work(); }",
            "fn f() { let g = span!(\"fit\"); work(); drop(g); }",
            // Not the macro at all: a method or variable named span.
            "fn f(span: usize) -> usize { span + 1 }",
        ] {
            assert!(!rules_of(&lint(src)).contains(&"UDM006"), "{src}");
        }
    }
}
