//! Scope, capture and mutation analysis over the parsed AST.
//!
//! This is the small intra-function dataflow walker the concurrency
//! rules run on. It tracks `let` bindings (and `fn` parameters) through
//! lexical scopes, and for every closure records which enclosing-scope
//! bindings it captures, whether those captures are mutated inside the
//! closure body (assignment, `&mut` borrow, or a mutating method call),
//! and any iteration over unordered collections — the facts UDM007 and
//! UDM009 decide on.

use crate::ast::{Block, Closure, Item, ItemKind, Node, Stmt};
use crate::lexer::{Tok, TokKind};
use std::collections::HashMap;

/// One binding visible in a scope.
#[derive(Debug, Clone)]
pub struct BindingInfo {
    /// Declared with `mut`.
    pub mutable: bool,
    /// Flattened text of the binding's type/initializer tokens —
    /// scanned for type names (`RefCell`, `HashMap`, …).
    pub decl_text: String,
}

/// One captured variable inside a closure.
#[derive(Debug, Clone)]
pub struct Capture {
    /// The variable name.
    pub name: String,
    /// The binding in the enclosing scope, as declared.
    pub binding: BindingInfo,
    /// Assigned to inside the closure (`x = ..`, `x += ..`).
    pub assigned: bool,
    /// Mutably borrowed inside the closure (`&mut x`).
    pub mut_borrowed: bool,
    /// Receiver of a mutating method (`x.push(..)`, `x.insert(..)`).
    pub mut_method: bool,
    /// 1-based line of the first mutating (or first) use.
    pub line: usize,
}

impl Capture {
    /// Any form of mutation through the capture.
    pub fn mutated(&self) -> bool {
        self.assigned || self.mut_borrowed || self.mut_method
    }
}

/// Iteration over an unordered collection observed in a closure body.
#[derive(Debug, Clone)]
pub struct UnorderedIter {
    /// The iterated binding.
    pub name: String,
    /// The collection type found in the binding's declaration.
    pub ty: String,
    /// 1-based line of the iteration call.
    pub line: usize,
}

/// Analysis result for one closure, keyed by its opening-pipe token.
#[derive(Debug)]
pub struct ClosureReport {
    /// Token index of the closure's opening `|` / `||`.
    pub open: usize,
    /// 1-based line of the closure.
    pub line: usize,
    /// Captured enclosing-scope bindings.
    pub captures: Vec<Capture>,
    /// Unordered-collection iterations inside the body.
    pub unordered_iters: Vec<UnorderedIter>,
}

/// Methods that mutate their receiver in-place.
const MUTATING_METHODS: [&str; 14] = [
    "push",
    "push_str",
    "insert",
    "remove",
    "extend",
    "clear",
    "sort",
    "sort_by",
    "sort_unstable",
    "truncate",
    "drain",
    "retain",
    "pop",
    "append",
];

/// Unordered collection types whose iteration order is nondeterministic.
const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Iterator-producing methods whose order reflects the collection's.
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Names that are never variable references.
const NON_VAR_IDENTS: [&str; 30] = [
    "let", "if", "else", "match", "while", "loop", "for", "return", "break", "continue", "in",
    "move", "mut", "ref", "as", "where", "unsafe", "async", "dyn", "self", "Self", "true", "false",
    "fn", "impl", "struct", "enum", "crate", "super", "use",
];

/// Analyzes an `fn` item's body: parameter + `let` scopes, then one
/// [`ClosureReport`] per closure found anywhere inside.
pub fn analyze_fn(item: &Item, toks: &[Tok]) -> Vec<ClosureReport> {
    let mut scopes: Vec<HashMap<String, BindingInfo>> = vec![HashMap::new()];
    if item.kind == ItemKind::Fn {
        if let Some(params) = item.param_group() {
            bind_params(params, toks, scopes.last_mut().expect("root scope"));
        }
    }
    let mut reports = Vec::new();
    if let Some(body) = &item.body {
        walk_block(body, toks, &mut scopes, &mut reports);
    }
    reports
}

/// Binds `name: Type` parameter patterns (commas at group depth 0).
fn bind_params(params: &[Node], toks: &[Tok], scope: &mut HashMap<String, BindingInfo>) {
    // Split on top-level comma tokens.
    let mut current: Vec<&Node> = Vec::new();
    let mut parts: Vec<Vec<&Node>> = Vec::new();
    for n in params {
        if let Node::Tok(i) = n {
            if toks[*i].is_punct(",") {
                parts.push(std::mem::take(&mut current));
                continue;
            }
        }
        current.push(n);
    }
    parts.push(current);
    for part in parts {
        // Pattern = tokens before the first `:`; name = first plain
        // ident in it (after optional `mut`/`ref`/`&`).
        let mut name = None;
        let mut mutable = false;
        let mut after_colon = false;
        let mut decl = String::new();
        for n in &part {
            if let Node::Tok(i) = n {
                let t = &toks[*i];
                if !after_colon && t.is_punct(":") {
                    after_colon = true;
                    continue;
                }
                if after_colon {
                    decl.push_str(&t.text);
                    decl.push(' ');
                } else if t.is_ident("mut") {
                    mutable = true;
                } else if t.kind == TokKind::Ident
                    && name.is_none()
                    && !NON_VAR_IDENTS.contains(&t.text.as_str())
                {
                    name = Some(t.text.clone());
                }
            } else if after_colon {
                flatten_into(n, toks, &mut decl);
            }
        }
        if let Some(name) = name {
            scope.insert(
                name,
                BindingInfo {
                    mutable,
                    decl_text: decl,
                },
            );
        }
    }
}

fn walk_block(
    block: &Block,
    toks: &[Tok],
    scopes: &mut Vec<HashMap<String, BindingInfo>>,
    reports: &mut Vec<ClosureReport>,
) {
    scopes.push(HashMap::new());
    for stmt in &block.stmts {
        walk_stmt(stmt, toks, scopes, reports);
    }
    scopes.pop();
}

fn walk_stmt(
    stmt: &Stmt,
    toks: &[Tok],
    scopes: &mut Vec<HashMap<String, BindingInfo>>,
    reports: &mut Vec<ClosureReport>,
) {
    // Walk nested structures first (the initializer may reference the
    // *previous* binding of the same name; close enough for lint use).
    for n in &stmt.nodes {
        walk_node(n, toks, scopes, reports);
    }
    if stmt.is_let {
        if let Some((name, info)) = let_binding(stmt, toks) {
            if let Some(scope) = scopes.last_mut() {
                scope.insert(name, info);
            }
        }
    }
    // `for pat in ..` introduces a loop binding usable by later closures
    // in the same block (approximation: bind in the current scope).
    if let [Node::Tok(i), ..] = stmt.nodes.as_slice() {
        if toks[*i].is_ident("for") {
            let mut j = 1;
            let mut mutable = false;
            while let Some(Node::Tok(k)) = stmt.nodes.get(j) {
                let t = &toks[*k];
                if t.is_ident("in") {
                    break;
                }
                if t.is_ident("mut") {
                    mutable = true;
                } else if t.kind == TokKind::Ident && !NON_VAR_IDENTS.contains(&t.text.as_str()) {
                    if let Some(scope) = scopes.last_mut() {
                        scope.insert(
                            t.text.clone(),
                            BindingInfo {
                                mutable,
                                decl_text: String::new(),
                            },
                        );
                    }
                    break;
                }
                j += 1;
            }
        }
    }
}

/// Extracts `let [mut] name [: Type] [= init]` from a let statement.
fn let_binding(stmt: &Stmt, toks: &[Tok]) -> Option<(String, BindingInfo)> {
    let mut name = None;
    let mut mutable = false;
    let mut in_decl = false;
    let mut decl = String::new();
    for n in &stmt.nodes {
        match n {
            Node::Tok(i) => {
                let t = &toks[*i];
                if !in_decl {
                    if t.is_punct(":") || t.is_punct("=") {
                        in_decl = true;
                    } else if t.is_ident("mut") {
                        mutable = true;
                    } else if t.kind == TokKind::Ident
                        && name.is_none()
                        && !NON_VAR_IDENTS.contains(&t.text.as_str())
                    {
                        name = Some(t.text.clone());
                    }
                } else {
                    decl.push_str(&t.text);
                    decl.push(' ');
                }
            }
            _ if in_decl => flatten_into(n, toks, &mut decl),
            _ => {}
        }
    }
    name.map(|n| {
        (
            n,
            BindingInfo {
                mutable,
                decl_text: decl,
            },
        )
    })
}

fn walk_node(
    node: &Node,
    toks: &[Tok],
    scopes: &mut Vec<HashMap<String, BindingInfo>>,
    reports: &mut Vec<ClosureReport>,
) {
    match node {
        Node::Tok(_) => {}
        Node::Group { children, .. } => {
            for n in children {
                walk_node(n, toks, scopes, reports);
            }
        }
        Node::Block(b) => walk_block(b, toks, scopes, reports),
        Node::Closure(c) => {
            reports.push(analyze_closure(c, toks, scopes));
            // Recurse for nested closures, with the closure's own
            // parameters in scope.
            scopes.push(closure_param_scope(c, toks));
            for n in &c.body {
                walk_node(n, toks, scopes, reports);
            }
            scopes.pop();
        }
        Node::Item(item) => {
            // Nested fn: fresh scope stack (no implicit captures).
            let mut inner = analyze_fn(item, toks);
            reports.append(&mut inner);
        }
    }
}

fn closure_param_scope(c: &Closure, toks: &[Tok]) -> HashMap<String, BindingInfo> {
    let mut scope = HashMap::new();
    bind_params(&c.params, toks, &mut scope);
    scope
}

/// Resolves a name against the scope stack (innermost wins).
fn lookup<'a>(scopes: &'a [HashMap<String, BindingInfo>], name: &str) -> Option<&'a BindingInfo> {
    scopes.iter().rev().find_map(|s| s.get(name))
}

/// Analyzes one closure against the current enclosing scopes.
fn analyze_closure(
    c: &Closure,
    toks: &[Tok],
    scopes: &[HashMap<String, BindingInfo>],
) -> ClosureReport {
    let params = closure_param_scope(c, toks);
    let mut flat: Vec<usize> = Vec::new();
    flatten_indices(&c.body, &mut flat);
    let mut captures: HashMap<String, Capture> = HashMap::new();
    let mut unordered = Vec::new();
    // Local lets inside the closure body shadow enclosing bindings.
    let mut locals: Vec<String> = Vec::new();
    for (k, &i) in flat.iter().enumerate() {
        let t = &toks[i];
        if t.is_ident("let") {
            if let Some(nt) = flat.get(k + 1..).and_then(|rest| {
                rest.iter()
                    .map(|&j| &toks[j])
                    .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref"))
            }) {
                locals.push(nt.text.clone());
            }
        }
        if t.kind != TokKind::Ident || NON_VAR_IDENTS.contains(&t.text.as_str()) {
            continue;
        }
        // Skip field / path / method-name positions.
        let prev = (i > 0).then(|| &toks[i - 1]);
        if prev.is_some_and(|p| p.is_punct(".") || p.is_punct("::")) {
            continue;
        }
        if toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            continue; // path root (type/module), not a variable
        }
        let name = t.text.as_str();
        if params.contains_key(name) || locals.iter().any(|l| l == name) {
            continue;
        }
        let Some(binding) = lookup(scopes, name) else {
            continue;
        };
        let entry = captures.entry(name.to_string()).or_insert_with(|| Capture {
            name: name.to_string(),
            binding: binding.clone(),
            assigned: false,
            mut_borrowed: false,
            mut_method: false,
            line: t.line,
        });
        // Mutation forms at the use site.
        if let Some(next) = toks.get(i + 1) {
            if is_assign_op(next) {
                entry.assigned = true;
                entry.line = t.line;
            }
            if next.is_punct(".") {
                if let Some(m) = toks.get(i + 2) {
                    if MUTATING_METHODS.contains(&m.text.as_str())
                        && toks.get(i + 3).is_some_and(|p| p.is_punct("("))
                    {
                        entry.mut_method = true;
                        entry.line = t.line;
                    }
                }
            }
        }
        if i >= 2 && toks[i - 1].is_ident("mut") && toks[i - 2].is_punct("&") {
            entry.mut_borrowed = true;
            entry.line = t.line;
        }
        // Unordered iteration: `name.iter()` etc. where the binding's
        // declaration names a HashMap/HashSet.
        if let (Some(dot), Some(m)) = (toks.get(i + 1), toks.get(i + 2)) {
            if dot.is_punct(".") && ITER_METHODS.contains(&m.text.as_str()) {
                if let Some(ty) = UNORDERED_TYPES
                    .iter()
                    .find(|ty| binding.decl_text.contains(*ty))
                {
                    unordered.push(UnorderedIter {
                        name: name.to_string(),
                        ty: (*ty).to_string(),
                        line: t.line,
                    });
                }
            }
        }
    }
    let mut captures: Vec<Capture> = captures.into_values().collect();
    captures.sort_by(|a, b| a.name.cmp(&b.name));
    ClosureReport {
        open: c.open,
        line: c.line,
        captures,
        unordered_iters: unordered,
    }
}

fn is_assign_op(t: &Tok) -> bool {
    matches!(
        t.text.as_str(),
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>="
    ) && t.kind == TokKind::Punct
}

/// Collects the token indices of a node list, in order.
fn flatten_indices(nodes: &[Node], out: &mut Vec<usize>) {
    for n in nodes {
        flatten_node_indices(n, out);
    }
}

fn flatten_node_indices(node: &Node, out: &mut Vec<usize>) {
    match node {
        Node::Tok(i) => out.push(*i),
        Node::Group {
            open,
            children,
            close,
            ..
        } => {
            out.push(*open);
            flatten_indices(children, out);
            if let Some(c) = close {
                out.push(*c);
            }
        }
        Node::Block(b) => {
            out.push(b.open);
            for s in &b.stmts {
                flatten_indices(&s.nodes, out);
                if let Some(semi) = s.semi {
                    out.push(semi);
                }
            }
            if let Some(c) = b.close {
                out.push(c);
            }
        }
        Node::Closure(c) => {
            if let Some(m) = c.move_tok {
                out.push(m);
            }
            out.push(c.open);
            flatten_indices(&c.params, out);
            if let Some(cl) = c.close {
                out.push(cl);
            }
            flatten_indices(&c.body, out);
        }
        Node::Item(item) => {
            flatten_indices(&item.head, out);
            if let Some(b) = &item.body {
                flatten_node_indices(&Node::Tok(b.open), out);
                for s in &b.stmts {
                    flatten_indices(&s.nodes, out);
                    if let Some(semi) = s.semi {
                        out.push(semi);
                    }
                }
                if let Some(c) = b.close {
                    out.push(c);
                }
            }
        }
    }
}

/// Flattens a node's tokens into a text buffer (space-separated).
fn flatten_into(node: &Node, toks: &[Tok], out: &mut String) {
    let mut idx = Vec::new();
    flatten_node_indices(node, &mut idx);
    for i in idx {
        out.push_str(&toks[i].text);
        out.push(' ');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn closures_of(src: &str) -> Vec<ClosureReport> {
        let lexed = lex(src);
        let ast = parse(&lexed);
        assert!(ast.errors.is_empty(), "{:?}", ast.errors);
        let mut out = Vec::new();
        ast.visit_items(&mut |item, _| {
            if item.kind == ItemKind::Fn && item.body.is_some() {
                out.append(&mut analyze_fn(item, &lexed.toks));
            }
        });
        out
    }

    #[test]
    fn mutable_capture_is_detected() {
        let reps = closures_of(
            "fn f() { let mut total = 0.0; items.iter().for_each(|x| { total += x; }); }",
        );
        assert_eq!(reps.len(), 1);
        let cap = reps[0].captures.iter().find(|c| c.name == "total").unwrap();
        assert!(cap.binding.mutable);
        assert!(cap.assigned);
        assert!(cap.mutated());
    }

    #[test]
    fn read_only_capture_is_not_mutation() {
        let reps = closures_of("fn f(scale: f64) { let k = 2.0; run(|x| x * k * scale); }");
        assert_eq!(reps.len(), 1);
        for c in &reps[0].captures {
            assert!(!c.mutated(), "{c:?}");
        }
        let names: Vec<&str> = reps[0].captures.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["k", "scale"]);
    }

    #[test]
    fn mutating_method_on_capture() {
        let reps = closures_of("fn f() { let mut acc = Vec::new(); run(|x| { acc.push(x); }); }");
        let cap = reps[0].captures.iter().find(|c| c.name == "acc").unwrap();
        assert!(cap.mut_method);
    }

    #[test]
    fn mut_borrow_of_capture() {
        let reps = closures_of("fn f() { let mut buf = vec![]; run(|| fill(&mut buf)); }");
        let cap = reps[0].captures.iter().find(|c| c.name == "buf").unwrap();
        assert!(cap.mut_borrowed);
    }

    #[test]
    fn refcell_type_recorded_in_decl_text() {
        let reps = closures_of(
            "fn f() { let cell: RefCell<f64> = RefCell::new(0.0); run(|| cell.borrow()); }",
        );
        let cap = reps[0].captures.iter().find(|c| c.name == "cell").unwrap();
        assert!(cap.binding.decl_text.contains("RefCell"), "{cap:?}");
        assert!(!cap.mutated());
    }

    #[test]
    fn closure_params_and_locals_are_not_captures() {
        let reps = closures_of("fn f() { run(|x: f64| { let y = x + 1.0; y * 2.0 }); }");
        assert!(reps[0].captures.is_empty(), "{:?}", reps[0].captures);
    }

    #[test]
    fn unordered_map_iteration_is_reported() {
        let reps = closures_of(
            "fn f() { let m: HashMap<String, f64> = HashMap::new(); init(|| m.iter().map(|(_, v)| v).sum::<f64>()); }",
        );
        let outer = reps.iter().find(|r| !r.unordered_iters.is_empty()).unwrap();
        assert_eq!(outer.unordered_iters[0].ty, "HashMap");
    }

    #[test]
    fn ordered_collection_iteration_is_fine() {
        let reps = closures_of(
            "fn f() { let m: BTreeMap<String, f64> = BTreeMap::new(); init(|| m.iter().count()); }",
        );
        assert!(reps.iter().all(|r| r.unordered_iters.is_empty()));
    }

    #[test]
    fn path_roots_and_fields_are_not_captures() {
        let reps = closures_of("fn f() { let n = 3; run(|| Vec::with_capacity(n) ); }");
        let names: Vec<&str> = reps[0].captures.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["n"]);
    }

    #[test]
    fn fn_params_are_bound() {
        let reps = closures_of("fn f(mut state: Vec<f64>) { run(move || state.clear()); }");
        let cap = reps[0].captures.iter().find(|c| c.name == "state").unwrap();
        assert!(cap.binding.mutable);
        assert!(cap.mut_method);
    }
}
