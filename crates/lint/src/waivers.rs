//! Waivers: inline `// udm-lint: allow(RULE) reason` comments and the
//! repo-level `lint.toml` allowlist.
//!
//! An inline waiver covers its own line and the next line that carries
//! code, so it can sit above the flagged statement (the common form) or
//! trail it. `lint.toml` entries waive `RULE:path` (any line) or
//! `RULE:path:line` (that line only) and must carry a reason string.

use crate::lexer::Lexed;
use crate::rules::Diagnostic;
use std::collections::BTreeSet;

/// One inline waiver extracted from a comment.
#[derive(Debug, Clone)]
pub struct InlineWaiver {
    /// Rule ids this waiver covers.
    pub rules: Vec<String>,
    /// Source lines the waiver applies to.
    pub lines: BTreeSet<usize>,
    /// The stated reason (required — reasonless waivers are ignored).
    pub reason: String,
}

/// Extracts inline waivers from a file's comments. A waiver at line L
/// covers L and the first following line that has a token.
pub fn inline_waivers(lexed: &Lexed) -> Vec<InlineWaiver> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("udm-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(after_allow) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = after_allow.find(')') else {
            continue;
        };
        let rules: Vec<String> = after_allow[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = after_allow[close + 1..]
            .trim()
            .trim_end_matches("*/")
            .trim();
        if rules.is_empty() || reason.is_empty() {
            continue;
        }
        let mut lines = BTreeSet::new();
        lines.insert(c.line);
        if let Some(next) = lexed
            .toks
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > c.line)
            .min()
        {
            lines.insert(next);
        }
        out.push(InlineWaiver {
            rules,
            lines,
            reason: reason.to_string(),
        });
    }
    out
}

/// One `lint.toml` allowlist entry.
#[derive(Debug, Clone)]
pub struct TomlWaiver {
    /// Rule id (`UDM001` …).
    pub rule: String,
    /// Root-relative path with forward slashes.
    pub path: String,
    /// Specific line, or `None` to waive the whole file for this rule.
    pub line: Option<usize>,
    /// The stated reason.
    pub reason: String,
}

/// Parses the `[waivers]` section of `lint.toml`. This is a minimal
/// hand-rolled reader for the subset the allowlist uses:
/// `"RULE:path[:line]" = "reason"` lines under `[waivers]`.
pub fn parse_lint_toml(text: &str) -> Result<Vec<TomlWaiver>, String> {
    let mut out = Vec::new();
    let mut in_waivers = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            in_waivers = line == "[waivers]";
            continue;
        }
        if !in_waivers {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("lint.toml:{}: expected `key = value`", idx + 1))?;
        let key = unquote(key.trim())
            .ok_or_else(|| format!("lint.toml:{}: key must be a quoted string", idx + 1))?;
        let reason = unquote(value.trim())
            .ok_or_else(|| format!("lint.toml:{}: reason must be a quoted string", idx + 1))?;
        if reason.is_empty() {
            return Err(format!("lint.toml:{}: waiver needs a reason", idx + 1));
        }
        let parts: Vec<&str> = key.split(':').collect();
        if parts.len() < 2 || !parts[0].starts_with("UDM") {
            return Err(format!(
                "lint.toml:{}: key must be \"RULE:path[:line]\", got {key:?}",
                idx + 1
            ));
        }
        let (path_parts, line_no) = match parts.last().unwrap().parse::<usize>() {
            Ok(n) if parts.len() > 2 => (&parts[1..parts.len() - 1], Some(n)),
            _ => (&parts[1..], None),
        };
        out.push(TomlWaiver {
            rule: parts[0].to_string(),
            path: path_parts.join(":"),
            line: line_no,
            reason,
        });
    }
    Ok(out)
}

fn unquote(s: &str) -> Option<String> {
    let s = s.strip_prefix('"')?.strip_suffix('"')?;
    Some(s.to_string())
}

/// Outcome of filtering diagnostics through the waivers.
#[derive(Debug, Default)]
pub struct WaiverOutcome {
    /// Diagnostics that survived (must be fixed or waived).
    pub remaining: Vec<Diagnostic>,
    /// Count of diagnostics silenced by waivers.
    pub waived: usize,
    /// Indices into the toml waiver list that matched something.
    pub used_toml: BTreeSet<usize>,
    /// Indices into the inline waiver list that matched something.
    pub used_inline: BTreeSet<usize>,
}

/// Filters `diags` for one file through its inline waivers and the
/// repo-wide toml allowlist.
pub fn apply_waivers(
    diags: Vec<Diagnostic>,
    inline: &[InlineWaiver],
    toml: &[TomlWaiver],
) -> WaiverOutcome {
    let mut out = WaiverOutcome::default();
    for d in diags {
        let inline_hit = inline
            .iter()
            .position(|w| w.rules.iter().any(|r| r == d.rule) && w.lines.contains(&d.line));
        let toml_hit = toml.iter().position(|w| {
            w.rule == d.rule
                && w.path == d.path
                && match w.line {
                    None => true,
                    Some(l) => l == d.line,
                }
        });
        if let Some(i) = inline_hit {
            out.waived += 1;
            out.used_inline.insert(i);
        } else if let Some(i) = toml_hit {
            out.waived += 1;
            out.used_toml.insert(i);
        } else {
            out.remaining.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn inline_waiver_covers_next_code_line() {
        let src = "fn f() {\n    // udm-lint: allow(UDM001) invariant: x is always Some here\n    x.unwrap();\n}";
        let l = lex(src);
        let ws = inline_waivers(&l);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rules, vec!["UDM001"]);
        assert!(ws[0].lines.contains(&2) && ws[0].lines.contains(&3));
        assert!(ws[0].reason.contains("invariant"));
    }

    #[test]
    fn reasonless_waivers_are_ignored() {
        let l = lex("// udm-lint: allow(UDM001)\nx.unwrap();");
        assert!(inline_waivers(&l).is_empty());
    }

    #[test]
    fn multi_rule_waiver() {
        let l = lex("// udm-lint: allow(UDM001, UDM002) both are fine here\nlet y = 1;");
        let ws = inline_waivers(&l);
        assert_eq!(ws[0].rules, vec!["UDM001", "UDM002"]);
    }

    #[test]
    fn toml_parse_file_and_line_forms() {
        let toml = r#"
# comment
[waivers]
"UDM004:crates/kde/src/columns.rs" = "precomputed columns, inputs already validated"
"UDM005:crates/kde/src/columns.rs:57" = "validated at construction"
"#;
        let ws = parse_lint_toml(toml).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].line, None);
        assert_eq!(ws[1].line, Some(57));
        assert_eq!(ws[1].rule, "UDM005");
    }

    #[test]
    fn toml_rejects_bad_keys_and_empty_reasons() {
        assert!(parse_lint_toml("[waivers]\n\"nonsense\" = \"r\"\n").is_err());
        assert!(parse_lint_toml("[waivers]\n\"UDM001:a.rs\" = \"\"\n").is_err());
        assert!(parse_lint_toml("[waivers]\nUDM001 = \"r\"\n").is_err());
    }

    #[test]
    fn other_sections_are_ignored() {
        let ws = parse_lint_toml("[other]\n\"UDM001:a.rs\" = \"x\"\n").unwrap();
        assert!(ws.is_empty());
    }

    #[test]
    fn apply_filters_and_tracks_usage() {
        let d = |rule: &'static str, line: usize| Diagnostic {
            rule,
            path: "crates/kde/src/x.rs".into(),
            line,
            message: String::new(),
            offset: 0,
        };
        let toml = vec![TomlWaiver {
            rule: "UDM002".into(),
            path: "crates/kde/src/x.rs".into(),
            line: Some(9),
            reason: "r".into(),
        }];
        let inline = vec![InlineWaiver {
            rules: vec!["UDM001".into()],
            lines: [4usize, 5].into_iter().collect(),
            reason: "r".into(),
        }];
        let out = apply_waivers(
            vec![d("UDM001", 5), d("UDM002", 9), d("UDM002", 10)],
            &inline,
            &toml,
        );
        assert_eq!(out.waived, 2);
        assert_eq!(out.remaining.len(), 1);
        assert_eq!(out.remaining[0].line, 10);
        assert!(out.used_toml.contains(&0));
        assert!(out.used_inline.contains(&0));
    }
}
