//! Round-trip guarantees for the lexer → parser pipeline.
//!
//! Two layers:
//!
//! 1. Every workspace `.rs` file must lex with exact byte spans
//!    (`src[t.start..t.end] == t.text`) and parse with zero errors and
//!    total token coverage — the acceptance bar is 100% of workspace
//!    sources, no fallback engagements.
//! 2. A proptest over randomly concatenated Rust snippets: the parser
//!    must stay total (never panic, never lose a token) on arbitrary —
//!    including ill-formed — token streams.

use proptest::prelude::*;
use std::path::Path;
use udm_lint::engine::collect_rust_files;
use udm_lint::lexer::lex;
use udm_lint::parser::parse;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn lexer_spans_reconstruct_every_workspace_file() {
    let files = collect_rust_files(workspace_root()).unwrap();
    assert!(files.len() > 50, "workspace walk found too few files");
    for path in files {
        let src = std::fs::read_to_string(&path).unwrap();
        let lexed = lex(&src);
        for t in &lexed.toks {
            assert_eq!(
                &src[t.start..t.end],
                t.text,
                "span drift in {} at byte {}",
                path.display(),
                t.start
            );
        }
        for c in &lexed.comments {
            assert!(
                src.contains(&c.text),
                "comment text drift in {}",
                path.display()
            );
        }
    }
}

#[test]
fn parser_covers_every_workspace_file_without_fallback() {
    let files = collect_rust_files(workspace_root()).unwrap();
    let mut failures = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(&path).unwrap();
        let lexed = lex(&src);
        let ast = parse(&lexed);
        if !ast.errors.is_empty() {
            failures.push(format!("{}: errors {:?}", path.display(), ast.errors));
            continue;
        }
        if !ast.covers_all_tokens() {
            let cov = ast.coverage();
            let missing = (0..lexed.toks.len())
                .find(|i| cov.get(*i) != Some(i))
                .unwrap_or(0);
            let t = &lexed.toks[missing.min(lexed.toks.len() - 1)];
            failures.push(format!(
                "{}: coverage breaks at token {} (`{}` line {})",
                path.display(),
                missing,
                t.text,
                t.line
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "parser fallback on {} workspace file(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Snippet pool for the fuzz strategy. Deliberately includes unbalanced
/// and out-of-context fragments — the parser must stay total on all of
/// them, not just on well-formed Rust.
const SNIPPETS: [&str; 24] = [
    "fn f(x: f64) -> f64 { x.exp() }\n",
    "pub fn g<T: Clone>(t: &T) -> Vec<T> where T: Send { vec![t.clone()] }\n",
    "struct S { a: f64, b: Vec<u8> }\n",
    "enum E { A, B(f64), C { x: u8 } }\n",
    "impl S { fn m(&self) -> f64 { self.a } }\n",
    "trait T { fn r(&self); }\n",
    "use std::collections::{HashMap, HashSet};\n",
    "const N: usize = 32;\n",
    "static CACHE: OnceLock<Vec<f64>> = OnceLock::new();\n",
    "let v = xs.iter().map(|x| x * 2.0).collect::<Vec<_>>();\n",
    "let s = a | b; let t = a || b;\n",
    "match x { Some(a) | None => 0, _ => 1 }\n",
    "m.get_or_init(|| build(n));\n",
    "#[cfg(feature = \"fast-math\")] fn fast() {}\n",
    "#[cfg(test)] mod tests { fn t() {} }\n",
    "unsafe { *p = 1; }\n",
    "macro_rules! m { ($x:expr) => { $x }; }\n",
    "thread_local! { static TL: usize = 0; }\n",
    "// comment line\n",
    "{ (\n",
    ") } ]\n",
    "| x | {\n",
    "#[cfg(\n",
    "fn broken(a: , -> {\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_is_total_on_arbitrary_snippet_streams(
        picks in proptest::collection::vec(0usize..SNIPPETS.len(), 0..40)
    ) {
        let src: String = picks.iter().map(|&i| SNIPPETS[i]).collect();
        let lexed = lex(&src);
        // Lexer spans must always reconstruct the source.
        for t in &lexed.toks {
            prop_assert_eq!(&src[t.start..t.end], t.text.as_str());
        }
        // The parser must be total: no panic, every token covered
        // exactly once, in order (errors are allowed — fallback is the
        // engine's job — but token loss never is).
        let ast = parse(&lexed);
        let cov = ast.coverage();
        prop_assert_eq!(cov.len(), lexed.toks.len());
        for (i, &t) in cov.iter().enumerate() {
            prop_assert_eq!(i, t);
        }
    }
}
