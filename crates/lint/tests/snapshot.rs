//! Engine-level snapshot: the fixture corpus must produce exactly the
//! rule/path/line triples pinned in `fixtures/EXPECTED.txt`.

use std::collections::BTreeSet;
use std::path::Path;

fn expected() -> Vec<String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/EXPECTED.txt");
    std::fs::read_to_string(&path)
        .expect("fixtures/EXPECTED.txt must exist")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect()
}

#[test]
fn fixture_corpus_matches_pinned_snapshot() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let report = udm_lint::check(&fixtures).expect("fixture check runs");
    let actual: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{} {}:{}", d.rule, d.path, d.line))
        .collect();
    let exp = expected();
    let missing: Vec<_> = exp.iter().filter(|l| !actual.contains(l)).collect();
    let extra: Vec<_> = actual.iter().filter(|l| !exp.contains(l)).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "snapshot drift\nmissing: {missing:#?}\nextra: {extra:#?}"
    );
}

#[test]
fn every_new_rule_has_firing_and_nonfiring_coverage() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let report = udm_lint::check(&fixtures).expect("fixture check runs");
    for rule in ["UDM007", "UDM008", "UDM009", "UDM010"] {
        let hits = report.diagnostics.iter().filter(|d| d.rule == rule).count();
        assert!(hits >= 2, "{rule}: want >= 2 firing fixtures, got {hits}");
        // Non-firing coverage: each new-rule fixture file contains the
        // rule's trigger constructs more often than it fires, so the
        // clean variants prove the rule discriminates.
        let file = format!("udm{}.rs", &rule[3..]);
        let src = std::fs::read_to_string(fixtures.join(&file)).unwrap();
        let nonfiring = src.matches("non-firing:").count();
        assert!(
            nonfiring >= 2,
            "{file}: want >= 2 annotated non-firing cases, got {nonfiring}"
        );
    }
}

#[test]
fn fixture_corpus_has_no_parse_fallbacks() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let report = udm_lint::check(&fixtures).expect("fixture check runs");
    assert_eq!(report.parse_fallbacks, Vec::<String>::new());
    let paths: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.path.as_str()).collect();
    assert!(!paths.contains("clean.rs"));
}
