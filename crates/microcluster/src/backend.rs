//! Density backends over micro-cluster mixtures: the concrete
//! implementations behind `udm_kde::backend::DensityBackend`.
//!
//! * **Exact** — [`MicroClusterKde`] itself: every pseudo-point, every
//!   query, bit-identical to the pre-trait direct call path (the trait
//!   methods delegate to the very same inherent methods).
//! * **Coreset** — [`CoresetKde`]: a discrepancy-style reduction in the
//!   spirit of Phillips & Tai (arXiv:1710.04325). Pseudo-points are
//!   greedily merged (cheapest certified pair first, halving-like
//!   cascades under a shared budget) while a *certified* `L∞` bound on
//!   the density perturbation stays under `eps · f_max`, where `f_max`
//!   is the mixture's peak-density upper bound. The construction is a
//!   deterministic function of the model: same pseudo-points in, same
//!   coreset out.
//! * **HBE** — [`HbeKde`]: hashing-based importance sampling in the
//!   spirit of Charikar & Siminelakis (arXiv:1808.10530). A per-dimension
//!   grid hash retrieves the near field (evaluated exactly); the far
//!   field is estimated by weighted importance sampling with
//!   `m = ⌈1/(eps²·√tau)⌉` draws. Randomness is derived from the model
//!   fingerprint and the query bits, so repeated queries are
//!   deterministic and serving stays reproducible.
//!
//! ## Certified coreset error bound
//!
//! Replacing weighted kernels `w_a·K_a + w_b·K_b` by `(w_a+w_b)·K_m`
//! (second moments preserved per dimension) perturbs the un-normalized
//! mixture by at most `w_a·sup|K_a−K_m| + w_b·sup|K_b−K_m|`. For
//! product-form Gaussian kernels with per-dimension peak `p_j`, center
//! `c_j` and variance `v_j`, a telescoping bound gives
//!
//! ```text
//! sup |Π_j k_j − Π_j k'_j|  ≤  Σ_j D_j · Π_{l≠j} max(p_l, p'_l)
//! D_j ≤ |p_j−p'_j| + p'_j·( |v_j−v'_j| / (e·min(v_j,v'_j))
//!                          + |c_j−c'_j| · e^{−1/2} / √v'_j )
//! ```
//!
//! using `sup_t |∂/∂v e^{−t²/2v}| ≤ 1/(e·v)` and
//! `sup_t |d/dt e^{−t²/2v}| = e^{−1/2}/√v`. Merge costs accumulate by
//! the triangle inequality, so the final [`CoresetKde::certified_error`]
//! is a true `L∞` bound against the source mixture — the property the
//! backend-equivalence proptest checks.

use crate::density::MicroClusterKde;
use crate::pseudo::PseudoPoint;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use udm_core::num::{clamped_sqrt, ensure_finite_slice, ensure_finite_slice_opt, f64_from_count};
use udm_core::{Result, Subspace, UdmError};
use udm_kde::backend::{record_query, BackendSpec, DensityBackend};
use udm_kde::{GaussianErrorKernel, KernelColumns};

/// FNV-1a over little-endian bytes.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a_f64s(mut h: u64, values: &[f64]) -> u64 {
    for &v in values {
        h = fnv1a(h, &v.to_bits().to_le_bytes());
    }
    h
}

/// Bit-exact digest of a fitted estimator: pseudo-point statistics,
/// weights and bandwidths. Two estimators share a fingerprint iff their
/// mixtures are bit-identical — the seed that makes the coreset and HBE
/// constructions deterministic functions of the model.
pub fn model_fingerprint(kde: &MicroClusterKde) -> u64 {
    let mut h = FNV_OFFSET;
    for p in kde.pseudo_points() {
        h = fnv1a_f64s(h, &p.centroid);
        h = fnv1a_f64s(h, &p.delta);
        h = fnv1a(h, &p.weight.to_le_bytes());
    }
    h = fnv1a_f64s(h, kde.bandwidths());
    fnv1a(h, &kde.total_points().to_le_bytes())
}

/// Builds the backend selected by `spec` over a fitted estimator.
///
/// `Exact` wraps a clone of the estimator itself; `Coreset` and `Hbe`
/// run their (deterministic) constructions. The result is `Arc`'d so
/// snapshot/classifier caches can share one instance across threads.
///
/// # Errors
///
/// Spec validation errors; construction failures from degenerate models.
pub fn build_backend(kde: &MicroClusterKde, spec: &BackendSpec) -> Result<Arc<dyn DensityBackend>> {
    spec.validate()?;
    match spec {
        BackendSpec::Exact => Ok(Arc::new(kde.clone())),
        BackendSpec::Coreset { eps } => Ok(Arc::new(CoresetKde::build(kde, *eps)?)),
        BackendSpec::Hbe { eps, tau } => Ok(Arc::new(HbeKde::build(kde, *eps, *tau)?)),
    }
}

// ---- Exact ---------------------------------------------------------------

impl DensityBackend for MicroClusterKde {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn dim(&self) -> usize {
        MicroClusterKde::dim(self)
    }

    // udm-lint: allow(UDM005) delegates to the same-named validating inherent method
    fn density(&self, x: &[f64]) -> Result<f64> {
        let started = Instant::now();
        let out = MicroClusterKde::density(self, x);
        record_query("exact", started.elapsed().as_secs_f64());
        out
    }

    fn density_subspace(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
        subspace: Subspace,
    ) -> Result<f64> {
        let started = Instant::now();
        let out = self.density_subspace_with_error(x, query_errors, subspace);
        record_query("exact", started.elapsed().as_secs_f64());
        out
    }

    fn density_subspaces(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
        subspaces: &[Subspace],
    ) -> Result<Vec<f64>> {
        let started = Instant::now();
        // One column build amortized over the whole batch; bit-identical
        // to the naive per-subspace loop by the KernelColumns contract.
        let cols = MicroClusterKde::kernel_columns(self, x, query_errors)?;
        let out = subspaces.iter().map(|&s| cols.density(s)).collect();
        record_query("exact", started.elapsed().as_secs_f64());
        out
    }

    fn kernel_columns(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
    ) -> Result<Option<KernelColumns>> {
        let started = Instant::now();
        let out = MicroClusterKde::kernel_columns(self, x, query_errors).map(Some);
        record_query("exact", started.elapsed().as_secs_f64());
        out
    }
}

// ---- Coreset -------------------------------------------------------------

/// `Σ_i w_i · Π_j p_ij` — the un-normalized peak-density upper bound of
/// the mixture (the kernel product is maximized at every diff = 0).
/// `None` when any kernel degenerates to a point mass, which no
/// finite-error reduction can bound.
fn peak_sum_of(
    pseudos: &[PseudoPoint],
    bandwidths: &[f64],
    kernel: &GaussianErrorKernel,
) -> Option<f64> {
    let mut total = 0.0;
    for p in pseudos {
        let mut prod = f64_from_count(p.weight);
        for (&bw, &dl) in bandwidths.iter().zip(p.delta.iter()) {
            let (pref, _) = kernel.factors(bw, dl)?;
            prod *= pref;
        }
        total += prod;
    }
    Some(total)
}

/// Weighted second-moment-preserving merge of two pseudo-points: the
/// merged Δ² absorbs both spreads *and* the centroid displacement, so
/// the merged kernel matches the pair's per-dimension mean and variance.
fn merge_pseudo(a: &PseudoPoint, b: &PseudoPoint) -> PseudoPoint {
    let wa = f64_from_count(a.weight);
    let wb = f64_from_count(b.weight);
    let w = wa + wb;
    let dim = a.dim();
    let mut centroid = Vec::with_capacity(dim);
    let mut delta = Vec::with_capacity(dim);
    for j in 0..dim {
        let c = (wa * a.centroid[j] + wb * b.centroid[j]) / w;
        centroid.push(c);
        let da = a.centroid[j] - c;
        let db = b.centroid[j] - c;
        let second = (wa * (a.delta[j] * a.delta[j] + da * da)
            + wb * (b.delta[j] * b.delta[j] + db * db))
            / w;
        delta.push(clamped_sqrt(second));
    }
    PseudoPoint {
        centroid,
        delta,
        weight: a.weight + b.weight,
    }
}

/// Certified `sup_x |K_p(x) − K_m(x)|` for two product-form Gaussian
/// kernels (see the module-level derivation). Conservative but rigorous;
/// `inf` (merge refused) when any variance degenerates.
fn sup_kernel_diff(
    p: &PseudoPoint,
    m: &PseudoPoint,
    bandwidths: &[f64],
    kernel: &GaussianErrorKernel,
) -> f64 {
    let dim = bandwidths.len();
    let mut d = vec![0.0; dim];
    let mut maxpeak = vec![0.0; dim];
    for j in 0..dim {
        let (Some((pp, ptv)), Some((mp, mtv))) = (
            kernel.factors(bandwidths[j], p.delta[j]),
            kernel.factors(bandwidths[j], m.delta[j]),
        ) else {
            return f64::INFINITY;
        };
        let (pv, mv) = (ptv * 0.5, mtv * 0.5);
        let vmin = pv.min(mv);
        if vmin.is_nan() || vmin <= 0.0 {
            return f64::INFINITY;
        }
        let shift = (p.centroid[j] - m.centroid[j]).abs();
        d[j] = (pp - mp).abs()
            + mp * ((pv - mv).abs() / (std::f64::consts::E * vmin)
                + shift * (-0.5f64).exp() / clamped_sqrt(mv));
        maxpeak[j] = pp.max(mp);
    }
    let mut total = 0.0;
    for (j, &dj) in d.iter().enumerate() {
        let mut term = dj;
        for (l, &pk) in maxpeak.iter().enumerate() {
            if l != j {
                term *= pk;
            }
        }
        total += term;
    }
    total
}

/// Certified un-normalized cost (in `N·density` units) of replacing the
/// pair `(a, b)` by their merge.
fn merge_cost(
    a: &PseudoPoint,
    b: &PseudoPoint,
    bandwidths: &[f64],
    k: &GaussianErrorKernel,
) -> f64 {
    let m = merge_pseudo(a, b);
    f64_from_count(a.weight) * sup_kernel_diff(a, &m, bandwidths, k)
        + f64_from_count(b.weight) * sup_kernel_diff(b, &m, bandwidths, k)
}

/// A bounded-`L∞`-error coreset of a micro-cluster mixture.
///
/// Wraps a reduced [`MicroClusterKde`] built from merged pseudo-points,
/// so evaluation (including the columnar per-query cache) reuses the
/// exact machinery — just over fewer rows. `certified_error` is an
/// absolute `L∞` bound on `|f_coreset − f_exact|` over all of space and
/// every subspace's marginal mixture evaluated at matching peaks — by
/// construction it never exceeds `eps · peak_density_bound`.
#[derive(Debug, Clone)]
pub struct CoresetKde {
    inner: MicroClusterKde,
    eps: f64,
    source_rows: usize,
    certified_error: f64,
    peak_bound: f64,
}

impl CoresetKde {
    /// Runs the deterministic reduction at relative budget `eps`.
    ///
    /// Degenerate mixtures (point-mass kernels, non-finite peak bounds)
    /// fall back to an uncompressed copy with `certified_error = 0`.
    ///
    /// # Errors
    ///
    /// [`UdmError::InvalidConfig`] when `eps` leaves `(0, 1)`.
    pub fn build(kde: &MicroClusterKde, eps: f64) -> Result<Self> {
        BackendSpec::Coreset { eps }.validate()?;
        let kernel = GaussianErrorKernel::new(kde.kernel_form());
        let bandwidths = kde.bandwidths().to_vec();
        let n = f64_from_count(kde.total_points());
        let source_rows = kde.pseudo_points().len();

        let exact_copy = |peak_bound: f64| CoresetKde {
            inner: kde.clone(),
            eps,
            source_rows,
            certified_error: 0.0,
            peak_bound,
        };

        let Some(peak_sum) = peak_sum_of(kde.pseudo_points(), &bandwidths, &kernel) else {
            return Ok(exact_copy(f64::INFINITY));
        };
        let peak_bound = peak_sum / n;
        if !peak_bound.is_finite() || peak_bound <= 0.0 {
            return Ok(exact_copy(peak_bound));
        }

        // Canonical order: centroid-lexicographic (ties by spread then
        // weight), so merge candidates are spatial neighbors and the
        // construction is independent of cluster arrival order.
        let mut points: Vec<PseudoPoint> = kde.pseudo_points().to_vec();
        points.sort_by(|a, b| {
            let by_centroid = a
                .centroid
                .iter()
                .zip(b.centroid.iter())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| o.is_ne());
            let by_delta = || {
                a.delta
                    .iter()
                    .zip(b.delta.iter())
                    .map(|(x, y)| x.total_cmp(y))
                    .find(|o| o.is_ne())
            };
            by_centroid
                .or_else(by_delta)
                .unwrap_or_else(|| a.weight.cmp(&b.weight))
        });

        let budget = eps * peak_sum; // un-normalized units (N·density)
        let mut spent = 0.0;
        let mut costs: Vec<f64> = (0..points.len().saturating_sub(1))
            .map(|i| merge_cost(&points[i], &points[i + 1], &bandwidths, &kernel))
            .collect();
        while points.len() > 1 {
            // Cheapest certified pair first; ties resolve to the lowest
            // index, keeping the cascade deterministic.
            let (best, &cost) = match costs
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
            {
                Some(found) => found,
                None => break,
            };
            if !(cost.is_finite() && spent + cost <= budget) {
                break;
            }
            spent += cost;
            let merged = merge_pseudo(&points[best], &points[best + 1]);
            points[best] = merged;
            points.remove(best + 1);
            costs.remove(best);
            if best < costs.len() {
                costs[best] = merge_cost(&points[best], &points[best + 1], &bandwidths, &kernel);
            }
            if best > 0 {
                costs[best - 1] =
                    merge_cost(&points[best - 1], &points[best], &bandwidths, &kernel);
            }
        }

        let inner = MicroClusterKde::from_pseudo_points(
            points,
            bandwidths,
            kde.kernel_form(),
            kde.total_points(),
        )?;
        Ok(CoresetKde {
            inner,
            eps,
            source_rows,
            certified_error: spent / n,
            peak_bound,
        })
    }

    /// The relative budget the coreset was built at.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Pseudo-points in the reduced mixture.
    pub fn rows(&self) -> usize {
        self.inner.num_pseudo_points()
    }

    /// Pseudo-points in the source mixture.
    pub fn source_rows(&self) -> usize {
        self.source_rows
    }

    /// The certified absolute `L∞` error against the source mixture
    /// (`≤ eps · peak_density_bound` by construction).
    pub fn certified_error(&self) -> f64 {
        self.certified_error
    }

    /// Upper bound on the source mixture's peak density.
    pub fn peak_density_bound(&self) -> f64 {
        self.peak_bound
    }

    /// The reduced estimator (exposed for benches and tests).
    pub fn inner(&self) -> &MicroClusterKde {
        &self.inner
    }
}

impl DensityBackend for CoresetKde {
    fn name(&self) -> &'static str {
        "coreset"
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    // udm-lint: allow(UDM005) delegates to the same-named validating inherent method
    fn density(&self, x: &[f64]) -> Result<f64> {
        let started = Instant::now();
        let out = self.inner.density(x);
        record_query("coreset", started.elapsed().as_secs_f64());
        out
    }

    fn density_subspace(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
        subspace: Subspace,
    ) -> Result<f64> {
        let started = Instant::now();
        let out = self
            .inner
            .density_subspace_with_error(x, query_errors, subspace);
        record_query("coreset", started.elapsed().as_secs_f64());
        out
    }

    fn density_subspaces(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
        subspaces: &[Subspace],
    ) -> Result<Vec<f64>> {
        let started = Instant::now();
        let cols = self.inner.kernel_columns(x, query_errors)?;
        let out = subspaces.iter().map(|&s| cols.density(s)).collect();
        record_query("coreset", started.elapsed().as_secs_f64());
        out
    }

    fn kernel_columns(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
    ) -> Result<Option<KernelColumns>> {
        let started = Instant::now();
        let out = self.inner.kernel_columns(x, query_errors).map(Some);
        record_query("coreset", started.elapsed().as_secs_f64());
        out
    }
}

// ---- HBE -----------------------------------------------------------------

/// xorshift64* — tiny, seedable, and good enough for importance-sample
/// index draws.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Largest near-field candidate set evaluated exactly per query; beyond
/// it, extra candidates are left to the far-field sampler (the split is
/// arbitrary for unbiasedness, the cap only limits per-query cost).
const NEAR_CAP: usize = 512;

/// Hashing-based density estimator over a micro-cluster mixture.
///
/// Queries split the mixture into a *near field* — pseudo-points whose
/// per-dimension grid cells neighbor the query's in every subspace
/// dimension, evaluated exactly — and a *far field*, estimated by
/// weighted importance sampling: `E_{i∼w/W}[K_i·1(i∉near)]` scaled by
/// `W`, with `m = ⌈1/(eps²·√tau)⌉` draws seeded by the model fingerprint
/// and the query bits. Any near/far split leaves the estimator unbiased;
/// the hash just routes the dominant kernels through the exact path so
/// variance concentrates on the flat tail.
#[derive(Debug)]
pub struct HbeKde {
    inner: MicroClusterKde,
    eps: f64,
    tau: f64,
    samples: usize,
    cum_weights: Vec<f64>,
    total_weight: f64,
    cell_widths: Vec<f64>,
    cells: Vec<HashMap<i64, Vec<u32>>>,
    seed: u64,
}

impl HbeKde {
    /// Builds the hash tables and the sampling distribution.
    ///
    /// # Errors
    ///
    /// [`UdmError::InvalidConfig`] when `eps` or `tau` leaves `(0, 1)`.
    pub fn build(kde: &MicroClusterKde, eps: f64, tau: f64) -> Result<Self> {
        BackendSpec::Hbe { eps, tau }.validate()?;
        let dim = kde.dim();
        let pseudos = kde.pseudo_points();
        let rows = pseudos.len();

        // Cell width per dimension: ~3 effective sigmas of the average
        // kernel, so a ±1-cell probe covers the mass that matters.
        let mut cell_widths = Vec::with_capacity(dim);
        for j in 0..dim {
            let h = kde.bandwidths()[j];
            let mean_d2 = pseudos.iter().map(|p| p.delta[j] * p.delta[j]).sum::<f64>()
                / f64_from_count(u64::try_from(rows.max(1)).unwrap_or(u64::MAX));
            let width = 3.0 * clamped_sqrt(h * h + mean_d2);
            cell_widths.push(if width.is_finite() && width > 0.0 {
                width
            } else {
                1.0
            });
        }
        let mut cells: Vec<HashMap<i64, Vec<u32>>> = vec![HashMap::new(); dim];
        for (r, p) in pseudos.iter().enumerate() {
            for j in 0..dim {
                let key = cell_key(p.centroid[j], cell_widths[j]);
                cells[j]
                    .entry(key)
                    .or_default()
                    .push(u32::try_from(r).unwrap_or(u32::MAX));
            }
        }

        let mut cum_weights = Vec::with_capacity(rows);
        let mut acc = 0.0;
        for p in pseudos {
            acc += f64_from_count(p.weight);
            cum_weights.push(acc);
        }

        // m = ceil(1/(eps²·√tau)), clamped to something sane; when m
        // reaches the row count a full exact pass is cheaper and the
        // estimator silently upgrades to it.
        let raw = (1.0 / (eps * eps * tau.sqrt())).ceil();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let samples = if raw.is_finite() {
            (raw as usize).clamp(16, 1 << 22)
        } else {
            1 << 22
        };

        Ok(HbeKde {
            inner: kde.clone(),
            eps,
            tau,
            samples,
            cum_weights,
            total_weight: acc,
            cell_widths,
            cells,
            seed: model_fingerprint(kde) | 1,
        })
    }

    /// The configured relative-error target.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The configured density floor fraction.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Far-field sample draws per query.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Near-field candidates for `(x, subspace)`: pseudo-points whose
    /// home cell neighbors the query cell in *every* subspace dimension.
    fn near_field(&self, x: &[f64], subspace: Subspace) -> Vec<u32> {
        let mut result: Option<Vec<u32>> = None;
        for j in subspace.dims() {
            let key = cell_key(x[j], self.cell_widths[j]);
            let mut near_j: Vec<u32> = Vec::new();
            for k in [key - 1, key, key + 1] {
                if let Some(bucket) = self.cells[j].get(&k) {
                    near_j.extend_from_slice(bucket);
                }
            }
            near_j.sort_unstable();
            result = Some(match result {
                None => near_j,
                Some(prev) => intersect_sorted(&prev, &near_j),
            });
            if result.as_ref().is_some_and(Vec::is_empty) {
                break;
            }
        }
        let mut out = result.unwrap_or_default();
        out.truncate(NEAR_CAP);
        out
    }

    /// The weighted kernel product of pseudo-point `r` at `(x, errors)`
    /// over `subspace` — the same arithmetic as the naive exact loop.
    fn kernel_product(
        &self,
        r: usize,
        x: &[f64],
        query_errors: Option<&[f64]>,
        subspace: Subspace,
    ) -> f64 {
        let p = &self.inner.pseudo_points()[r];
        let kernel = GaussianErrorKernel::new(self.inner.kernel_form());
        let mut prod = 1.0;
        for j in subspace.dims() {
            let psi = match query_errors {
                Some(errs) => clamped_sqrt(p.delta[j] * p.delta[j] + errs[j] * errs[j]),
                None => p.delta[j],
            };
            prod *= kernel.evaluate(x[j] - p.centroid[j], self.inner.bandwidths()[j], psi);
            // udm-lint: allow(UDM002) exact underflow short-circuit (bit-for-bit cache contract)
            if prod == 0.0 {
                break;
            }
        }
        prod
    }

    /// One estimated subspace density (validation already done by the
    /// public entry points).
    fn density_estimate(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
        subspace: Subspace,
        rng: &mut u64,
    ) -> f64 {
        let rows = self.inner.pseudo_points().len();
        let n = f64_from_count(self.inner.total_points());
        if self.samples >= rows {
            // Sampling would draw more kernels than exist: a full exact
            // pass is both cheaper and error-free.
            let total: f64 = (0..rows)
                .map(|r| {
                    f64_from_count(self.inner.pseudo_points()[r].weight)
                        * self.kernel_product(r, x, query_errors, subspace)
                })
                .sum();
            return total / n;
        }

        let near = self.near_field(x, subspace);
        let mut in_near = vec![false; rows];
        let mut near_sum = 0.0;
        for &r in &near {
            let r = r as usize;
            in_near[r] = true;
            near_sum += f64_from_count(self.inner.pseudo_points()[r].weight)
                * self.kernel_product(r, x, query_errors, subspace);
        }

        let mut far_acc = 0.0;
        for _ in 0..self.samples {
            let u = (xorshift(rng) >> 11) as f64 / (1u64 << 53) as f64 * self.total_weight;
            let idx = self.cum_weights.partition_point(|&c| c <= u).min(rows - 1);
            if !in_near[idx] {
                far_acc += self.kernel_product(idx, x, query_errors, subspace);
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let far = self.total_weight * far_acc / self.samples as f64;
        (near_sum + far) / n
    }

    fn validate(&self, x: &[f64], query_errors: Option<&[f64]>) -> Result<()> {
        let dim = self.inner.dim();
        if x.len() != dim {
            return Err(UdmError::DimensionMismatch {
                expected: dim,
                actual: x.len(),
            });
        }
        if let Some(errs) = query_errors {
            if errs.len() != dim {
                return Err(UdmError::DimensionMismatch {
                    expected: dim,
                    actual: errs.len(),
                });
            }
        }
        ensure_finite_slice("query coordinate", x)?;
        ensure_finite_slice_opt("query error", query_errors)?;
        Ok(())
    }

    /// Per-query RNG state: model fingerprint xor query/error/subspace
    /// bits — identical inputs always draw identical samples.
    fn query_seed(&self, x: &[f64], query_errors: Option<&[f64]>, subspaces: &[Subspace]) -> u64 {
        let mut h = fnv1a_f64s(self.seed, x);
        if let Some(errs) = query_errors {
            h = fnv1a_f64s(h, errs);
        }
        for s in subspaces {
            h = fnv1a(h, &s.bits().to_le_bytes());
        }
        h | 1
    }
}

fn cell_key(value: f64, width: f64) -> i64 {
    let k = (value / width).floor();
    if k.is_finite() {
        // Cell indices of finite inputs over sane widths fit i64 by a
        // huge margin; saturate rather than wrap at the extremes.
        #[allow(clippy::cast_possible_truncation)]
        if k >= i64::MAX as f64 {
            i64::MAX
        } else if k <= i64::MIN as f64 {
            i64::MIN
        } else {
            k as i64
        }
    } else {
        0
    }
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl DensityBackend for HbeKde {
    fn name(&self) -> &'static str {
        "hbe"
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn density(&self, x: &[f64]) -> Result<f64> {
        self.density_subspace(x, None, Subspace::full(self.inner.dim())?)
    }

    fn density_subspace(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
        subspace: Subspace,
    ) -> Result<f64> {
        Ok(self
            .density_subspaces(x, query_errors, &[subspace])?
            .pop()
            .unwrap_or(0.0))
    }

    fn density_subspaces(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
        subspaces: &[Subspace],
    ) -> Result<Vec<f64>> {
        let started = Instant::now();
        self.validate(x, query_errors)?;
        let dim = self.inner.dim();
        for s in subspaces {
            s.validate_for(dim)?;
            if s.is_empty() {
                return Err(UdmError::InvalidConfig(
                    "cannot evaluate a density over the empty subspace".into(),
                ));
            }
        }
        let mut rng = self.query_seed(x, query_errors, subspaces);
        let out = subspaces
            .iter()
            .map(|&s| self.density_estimate(x, query_errors, s, &mut rng))
            .collect();
        record_query("hbe", started.elapsed().as_secs_f64());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintainer::{MaintainerConfig, MicroClusterMaintainer};
    use udm_core::{UncertainDataset, UncertainPoint};
    use udm_kde::KdeConfig;

    fn fitted(n: usize, q: usize) -> MicroClusterKde {
        let points = (0..n)
            .map(|i| {
                let x = (i as f64 * 0.618_033_988_749).fract() * 10.0;
                let y = (i as f64 * 0.414_213_562_373).fract() * 6.0 - 3.0;
                UncertainPoint::new(vec![x, y], vec![(i % 4) as f64 * 0.1, 0.05]).unwrap()
            })
            .collect();
        let d = UncertainDataset::from_points(points).unwrap();
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(q)).unwrap();
        MicroClusterKde::fit(m.clusters(), KdeConfig::error_adjusted()).unwrap()
    }

    #[test]
    fn exact_backend_is_bit_identical_through_the_trait() {
        let kde = fitted(300, 24);
        let be: &dyn DensityBackend = &kde;
        assert_eq!(be.name(), "exact");
        assert_eq!(be.dim(), 2);
        let x = [4.2, -0.3];
        let errs = [0.2, 0.1];
        for s in [
            Subspace::full(2).unwrap(),
            Subspace::singleton(0).unwrap(),
            Subspace::singleton(1).unwrap(),
        ] {
            let direct = kde.density_subspace_with_error(&x, Some(&errs), s).unwrap();
            let via = be.density_subspace(&x, Some(&errs), s).unwrap();
            assert_eq!(direct.to_bits(), via.to_bits());
        }
        let direct = MicroClusterKde::density(&kde, &x).unwrap();
        assert_eq!(direct.to_bits(), be.density(&x).unwrap().to_bits());
        let subs = [Subspace::full(2).unwrap(), Subspace::singleton(1).unwrap()];
        let batch = be.density_subspaces(&x, None, &subs).unwrap();
        for (got, &s) in batch.iter().zip(subs.iter()) {
            let want = kde.density_subspace_with_error(&x, None, s).unwrap();
            assert_eq!(got.to_bits(), want.to_bits());
        }
        assert!(be.kernel_columns(&x, None).unwrap().is_some());
    }

    #[test]
    fn coreset_reduces_rows_and_respects_certified_bound() {
        let kde = fitted(500, 48);
        let coreset = CoresetKde::build(&kde, 0.2).unwrap();
        assert!(coreset.rows() < coreset.source_rows(), "nothing merged");
        assert!(coreset.certified_error() <= 0.2 * coreset.peak_density_bound() + 1e-12);
        let full = Subspace::full(2).unwrap();
        for i in 0..40 {
            let x = [i as f64 * 0.25, (i % 7) as f64 - 3.0];
            let exact = kde.density_subspace_with_error(&x, None, full).unwrap();
            let approx = coreset.density_subspace(&x, None, full).unwrap();
            assert!(
                (exact - approx).abs() <= coreset.certified_error() + 1e-12,
                "x={x:?}: |{exact} - {approx}| > {}",
                coreset.certified_error()
            );
        }
    }

    #[test]
    fn coreset_is_deterministic() {
        let kde = fitted(400, 32);
        let a = CoresetKde::build(&kde, 0.15).unwrap();
        let b = CoresetKde::build(&kde, 0.15).unwrap();
        assert_eq!(a.rows(), b.rows());
        let x = [1.0, 0.5];
        let s = Subspace::full(2).unwrap();
        assert_eq!(
            a.density_subspace(&x, None, s).unwrap().to_bits(),
            b.density_subspace(&x, None, s).unwrap().to_bits()
        );
    }

    #[test]
    fn tighter_eps_means_more_rows() {
        let kde = fitted(500, 48);
        let loose = CoresetKde::build(&kde, 0.5).unwrap();
        let tight = CoresetKde::build(&kde, 0.01).unwrap();
        assert!(tight.rows() >= loose.rows());
    }

    #[test]
    fn hbe_is_deterministic_and_close_on_dense_regions() {
        let kde = fitted(600, 64);
        let hbe = HbeKde::build(&kde, 0.1, 0.05).unwrap();
        assert_eq!(hbe.name(), "hbe");
        let full = Subspace::full(2).unwrap();
        let x = [5.0, 0.0];
        let a = hbe.density_subspace(&x, None, full).unwrap();
        let b = hbe.density_subspace(&x, None, full).unwrap();
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "same query must redraw the same samples"
        );
        let exact = kde.density_subspace_with_error(&x, None, full).unwrap();
        assert!(
            (a - exact).abs() <= 0.5 * exact.max(1e-12),
            "hbe {a} vs exact {exact}"
        );
        // No columnar form.
        assert!(hbe.kernel_columns(&x, None).unwrap().is_none());
    }

    #[test]
    fn hbe_small_model_upgrades_to_exact() {
        let kde = fitted(100, 8);
        let hbe = HbeKde::build(&kde, 0.2, 0.25).unwrap();
        // 8 rows < samples: the estimator runs the full pass.
        assert!(hbe.samples() >= 8);
        let s = Subspace::full(2).unwrap();
        let x = [2.0, 1.0];
        let got = hbe.density_subspace(&x, None, s).unwrap();
        let want = kde.density_subspace_with_error(&x, None, s).unwrap();
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn backends_validate_inputs() {
        let kde = fitted(200, 16);
        let specs = [
            BackendSpec::Exact,
            BackendSpec::Coreset { eps: 0.1 },
            BackendSpec::Hbe { eps: 0.2, tau: 0.1 },
        ];
        for spec in &specs {
            let be = build_backend(&kde, spec).unwrap();
            assert_eq!(be.name(), spec.name());
            assert!(be.density(&[0.0]).is_err(), "{spec}: arity unchecked");
            assert!(
                be.density_subspace(&[f64::NAN, 0.0], None, Subspace::full(2).unwrap())
                    .is_err(),
                "{spec}: NaN unchecked"
            );
            assert!(
                be.density_subspace(&[0.0, 0.0], Some(&[0.1]), Subspace::full(2).unwrap())
                    .is_err(),
                "{spec}: error arity unchecked"
            );
            assert!(
                be.density_subspace(&[0.0, 0.0], None, Subspace::EMPTY)
                    .is_err(),
                "{spec}: empty subspace unchecked"
            );
        }
    }

    #[test]
    fn build_backend_rejects_bad_specs() {
        let kde = fitted(100, 8);
        assert!(build_backend(&kde, &BackendSpec::Coreset { eps: 0.0 }).is_err());
        assert!(build_backend(&kde, &BackendSpec::Hbe { eps: 0.1, tau: 2.0 }).is_err());
    }

    #[test]
    fn fingerprint_tracks_model_bits() {
        let a = fitted(200, 16);
        let b = fitted(200, 16);
        let c = fitted(201, 16);
        assert_eq!(model_fingerprint(&a), model_fingerprint(&b));
        assert_ne!(model_fingerprint(&a), model_fingerprint(&c));
    }
}
