//! Versioned, checksummed checkpoints and crash recovery for the
//! resilient ingest pipeline.
//!
//! A checkpoint file is a small JSON *envelope*:
//!
//! ```text
//! { "version": 2, "digest": "<fnv1a64 hex>", "payload": "<json string>" }
//! ```
//!
//! The payload — the full [`ResilientIngestor`] state — is embedded as a
//! string, and the digest is computed over that exact string, so the
//! integrity check is independent of serializer formatting quirks.
//! Writes go to a sibling temp file first and are atomically renamed
//! into place, so a crash mid-write leaves the previous checkpoint
//! intact; the displaced checkpoint is rotated to a `.prev` sibling so
//! one earlier generation survives the publish. Loading detects
//! truncation/corruption ([`UdmError::CorruptSnapshot`]) and
//! incompatible schema versions ([`UdmError::UnsupportedSnapshotVersion`])
//! with typed errors, and [`load_checkpoint_with_fallback`] recovers
//! from a damaged latest file via the `.prev` generation.
//!
//! [`CheckpointDriver`] wraps an ingestor with periodic checkpointing
//! and replay-aware recovery: records already reflected in the restored
//! state (`seq < next_seq`) are skipped, so a killed ingest can resume
//! from the last checkpoint, replay its tail, and converge to the *bit
//! identical* micro-cluster statistics an uninterrupted run produces —
//! every ingest decision is deterministic and the persisted state
//! round-trips exactly (the vendored `serde_json` preserves `f64` to the
//! bit; non-finite floats never enter a checkpoint because quarantined
//! cells are stored as `Option`).

use crate::ingest::{IngestCounters, IngestPolicy, Observed, QuarantinedRecord, ResilientIngestor};
use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};
use udm_core::{Result, RunningStats, UdmError};

/// Schema version written by this build (version 1 was the unversioned
/// bare [`Snapshot`] JSON, which this module refuses with a typed error).
pub const SCHEMA_VERSION: u32 = 2;

/// FNV-1a 64-bit content digest (dependency-free, stable across
/// platforms).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Debug, Serialize, Deserialize)]
struct Envelope {
    version: u32,
    digest: String,
    payload: String,
}

/// Portable form of [`RunningStats`]: the empty accumulator's `±∞`
/// min/max sentinels do not survive JSON (the vendored `serde_json`
/// writes non-finite floats as `null`), so they are stored as `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortableStats {
    /// Observation count.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    /// Welford M2 accumulator.
    pub m2: f64,
    /// Minimum observation, `None` when empty.
    pub min: Option<f64>,
    /// Maximum observation, `None` when empty.
    pub max: Option<f64>,
}

impl From<&RunningStats> for PortableStats {
    fn from(s: &RunningStats) -> Self {
        PortableStats {
            count: s.count(),
            mean: s.mean(),
            m2: s.m2(),
            min: if s.count() > 0 { Some(s.min()) } else { None },
            max: if s.count() > 0 { Some(s.max()) } else { None },
        }
    }
}

impl From<&PortableStats> for RunningStats {
    fn from(p: &PortableStats) -> Self {
        RunningStats::from_parts(p.count, p.mean, p.m2, p.min, p.max)
    }
}

/// The complete persisted state of a [`ResilientIngestor`] plus the
/// driver's resume cursor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointPayload {
    /// Stream dimensionality (kept explicitly: the snapshot alone cannot
    /// recover it before warm-up seeds the first cluster).
    pub dim: usize,
    /// Maintainer configuration and cluster statistics.
    pub snapshot: Snapshot,
    /// Degradation policy in force.
    pub policy: IngestPolicy,
    /// Per-column running statistics, in portable form.
    pub col_stats: Vec<PortableStats>,
    /// The quarantine buffer.
    pub quarantine: Vec<QuarantinedRecord>,
    /// Verdict counters.
    pub counters: IngestCounters,
    /// Highest admitted timestamp.
    pub watermark: u64,
    /// Records offered to the ingestor so far.
    pub arrivals: u64,
    /// Sequence number of the next unprocessed record: replay skips
    /// everything below this.
    pub next_seq: u64,
}

impl CheckpointPayload {
    /// Captures an ingestor and the driver cursor.
    pub fn capture(ingestor: &ResilientIngestor, next_seq: u64) -> Self {
        CheckpointPayload {
            dim: ingestor.dim(),
            snapshot: Snapshot::capture(ingestor.maintainer()),
            policy: ingestor.policy().clone(),
            col_stats: ingestor
                .col_stats()
                .iter()
                .map(PortableStats::from)
                .collect(),
            quarantine: ingestor.quarantine().to_vec(),
            counters: *ingestor.counters(),
            watermark: ingestor.watermark(),
            arrivals: ingestor.arrivals(),
            next_seq,
        }
    }

    /// Reassembles the ingestor.
    ///
    /// # Errors
    ///
    /// [`UdmError::CorruptSnapshot`] when the payload is internally
    /// inconsistent; restore errors from
    /// [`crate::maintainer::MicroClusterMaintainer::from_clusters`].
    pub fn restore(self) -> Result<ResilientIngestor> {
        if !self.snapshot.clusters.is_empty() && self.snapshot.clusters[0].dim() != self.dim {
            return Err(UdmError::CorruptSnapshot {
                reason: format!(
                    "payload dim {} disagrees with cluster dim {}",
                    self.dim,
                    self.snapshot.clusters[0].dim()
                ),
            });
        }
        let maintainer = if self.snapshot.clusters.is_empty() {
            crate::maintainer::MicroClusterMaintainer::new(self.dim, self.snapshot.config)?
        } else {
            self.snapshot.restore()?
        };
        ResilientIngestor::from_parts(
            maintainer,
            self.policy,
            self.col_stats.iter().map(RunningStats::from).collect(),
            self.quarantine,
            self.counters,
            self.watermark,
            self.arrivals,
        )
    }
}

/// Serializes, digests and atomically writes a checkpoint.
///
/// # Errors
///
/// [`UdmError::Serde`] on encoding failure, [`UdmError::Io`] on
/// filesystem failure.
pub fn save_checkpoint(path: &Path, payload: &CheckpointPayload) -> Result<()> {
    let started = std::time::Instant::now();
    let payload_json =
        serde_json::to_string(payload).map_err(|e| UdmError::Serde(e.to_string()))?;
    let envelope = Envelope {
        version: SCHEMA_VERSION,
        digest: format!("{:016x}", fnv1a64(payload_json.as_bytes())),
        payload: payload_json,
    };
    let text = serde_json::to_string(&envelope).map_err(|e| UdmError::Serde(e.to_string()))?;
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    // Keep one previous generation: if the new file is later truncated
    // or corrupted on disk, recovery can fall back to it instead of
    // starting from scratch. A failed rotation (e.g. no previous file)
    // is not an error.
    if path.exists() {
        let _ = std::fs::rename(path, prev_path(path));
    }
    // Atomic publish: readers see either the old checkpoint or the new
    // one, never a torn write.
    std::fs::rename(&tmp, path)?;
    udm_observe::counter_inc!("udm_checkpoint_saves_total");
    udm_observe::histogram_observe!(
        "udm_checkpoint_save_seconds",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Reads, verifies and decodes a checkpoint.
///
/// # Errors
///
/// * [`UdmError::Io`] — the file cannot be read,
/// * [`UdmError::CorruptSnapshot`] — not a checkpoint envelope, or the
///   content digest does not match,
/// * [`UdmError::UnsupportedSnapshotVersion`] — written by a different
///   schema version,
/// * [`UdmError::Serde`] — the verified payload fails to decode (a
///   writer/reader type skew within the same schema version).
pub fn load_checkpoint(path: &Path) -> Result<CheckpointPayload> {
    let started = std::time::Instant::now();
    let text = std::fs::read_to_string(path)?;
    let envelope: Envelope =
        serde_json::from_str(&text).map_err(|e| UdmError::CorruptSnapshot {
            reason: format!("not a checkpoint envelope: {e}"),
        })?;
    if envelope.version != SCHEMA_VERSION {
        return Err(UdmError::UnsupportedSnapshotVersion {
            found: envelope.version,
            supported: SCHEMA_VERSION,
        });
    }
    let actual = format!("{:016x}", fnv1a64(envelope.payload.as_bytes()));
    if actual != envelope.digest {
        return Err(UdmError::CorruptSnapshot {
            reason: format!(
                "content digest mismatch: recorded {}, computed {actual}",
                envelope.digest
            ),
        });
    }
    let payload: CheckpointPayload =
        serde_json::from_str(&envelope.payload).map_err(|e| UdmError::Serde(e.to_string()))?;
    udm_observe::counter_inc!("udm_checkpoint_loads_total");
    udm_observe::histogram_observe!(
        "udm_checkpoint_load_seconds",
        started.elapsed().as_secs_f64()
    );
    Ok(payload)
}

/// Loads the checkpoint at `path`, falling back to the previous
/// generation (`<name>.prev`, kept by [`save_checkpoint`]'s rotation)
/// when the latest file is unreadable, truncated mid-write, or
/// otherwise corrupt. The fallback only engages when the previous
/// generation verifies cleanly; the *original* error is returned when
/// both generations fail, so callers diagnose the newest file.
///
/// # Errors
///
/// As [`load_checkpoint`], for the latest generation.
pub fn load_checkpoint_with_fallback(path: &Path) -> Result<CheckpointPayload> {
    match load_checkpoint(path) {
        Ok(payload) => Ok(payload),
        Err(primary) => match load_checkpoint(&prev_path(path)) {
            Ok(payload) => {
                udm_observe::counter_inc!("udm_checkpoint_fallback_loads_total");
                Ok(payload)
            }
            Err(_) => Err(primary),
        },
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    sibling_with_suffix(path, ".tmp")
}

/// The sibling path holding the previous checkpoint generation.
pub fn prev_path(path: &Path) -> PathBuf {
    sibling_with_suffix(path, ".prev")
}

fn sibling_with_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(suffix);
    path.with_file_name(name)
}

/// Periodic-checkpoint wrapper around [`ResilientIngestor`] with
/// replay-aware recovery.
///
/// `observe` returns `Ok(None)` for records the restored state has
/// already consumed (`seq < next_seq`), so after a crash the caller can
/// simply replay the stream from the beginning (or any point at or
/// before the checkpoint) and the driver fast-forwards to the tail.
#[derive(Debug)]
pub struct CheckpointDriver {
    ingestor: ResilientIngestor,
    path: PathBuf,
    every: u64,
    next_seq: u64,
    since_checkpoint: u64,
}

impl CheckpointDriver {
    /// Wraps an ingestor; a checkpoint is written after every `every`
    /// processed records.
    ///
    /// # Errors
    ///
    /// [`UdmError::InvalidConfig`] for `every == 0`.
    pub fn new(ingestor: ResilientIngestor, path: PathBuf, every: u64) -> Result<Self> {
        if every == 0 {
            return Err(UdmError::InvalidConfig(
                "checkpoint interval must be at least 1".into(),
            ));
        }
        Ok(CheckpointDriver {
            ingestor,
            path,
            every,
            next_seq: 0,
            since_checkpoint: 0,
        })
    }

    /// Restores a driver from the checkpoint at `path`, falling back to
    /// the previous generation when the latest file is damaged (see
    /// [`load_checkpoint_with_fallback`]).
    ///
    /// # Errors
    ///
    /// As [`load_checkpoint_with_fallback`] and
    /// [`CheckpointPayload::restore`]; [`UdmError::InvalidConfig`] for
    /// `every == 0`.
    pub fn recover(path: PathBuf, every: u64) -> Result<Self> {
        if every == 0 {
            return Err(UdmError::InvalidConfig(
                "checkpoint interval must be at least 1".into(),
            ));
        }
        let payload = load_checkpoint_with_fallback(&path)?;
        let next_seq = payload.next_seq;
        Ok(CheckpointDriver {
            ingestor: payload.restore()?,
            path,
            every,
            next_seq,
            since_checkpoint: 0,
        })
    }

    /// The wrapped ingestor.
    pub fn ingestor(&self) -> &ResilientIngestor {
        &self.ingestor
    }

    /// Sequence number of the next record this driver will process.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Offers one record. Returns `Ok(None)` when the record predates
    /// the restored state (replay fast-forward); otherwise the verdict
    /// and admissions, checkpointing on the configured cadence.
    ///
    /// # Errors
    ///
    /// Ingest invariant violations or checkpoint write failures.
    pub fn observe(&mut self, rec: &udm_data::fault::RawRecord) -> Result<Option<Observed>> {
        if rec.seq < self.next_seq {
            return Ok(None);
        }
        let obs = self.ingestor.observe(rec)?;
        self.next_seq = rec.seq + 1;
        self.since_checkpoint += 1;
        if self.since_checkpoint >= self.every {
            self.checkpoint()?;
            self.since_checkpoint = 0;
        }
        Ok(Some(obs))
    }

    /// Writes a checkpoint now.
    ///
    /// # Errors
    ///
    /// As [`save_checkpoint`].
    pub fn checkpoint(&self) -> Result<()> {
        save_checkpoint(
            &self.path,
            &CheckpointPayload::capture(&self.ingestor, self.next_seq),
        )
    }

    /// Drains the quarantine, writes a final checkpoint and returns the
    /// drained admissions plus the ingestor.
    ///
    /// # Errors
    ///
    /// As [`ResilientIngestor::drain_quarantine`] and
    /// [`save_checkpoint`].
    pub fn finish(mut self) -> Result<(Vec<crate::ingest::AdmittedRecord>, ResilientIngestor)> {
        let drained = self.ingestor.drain_quarantine()?;
        save_checkpoint(
            &self.path,
            &CheckpointPayload::capture(&self.ingestor, self.next_seq),
        )?;
        Ok((drained, self.ingestor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintainer::MaintainerConfig;
    use udm_core::UncertainPoint;
    use udm_data::fault::RawRecord;

    fn tmp_file(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("udm_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn rec(seq: u64, v: f64) -> RawRecord {
        RawRecord {
            seq,
            timestamp: seq,
            values: vec![v, v * 0.5],
            errors: vec![0.1, 0.0],
            label: None,
        }
    }

    fn fed_ingestor(n: u64) -> ResilientIngestor {
        let mut ing =
            ResilientIngestor::new(2, MaintainerConfig::new(4), IngestPolicy::default()).unwrap();
        for i in 0..n {
            ing.observe(&rec(i, (i % 13) as f64)).unwrap();
        }
        ing
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn save_load_roundtrips_bit_identically() {
        let ing = fed_ingestor(60);
        let payload = CheckpointPayload::capture(&ing, 60);
        let path = tmp_file("roundtrip.json");
        save_checkpoint(&path, &payload).unwrap();
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded, payload);
        let restored = loaded.restore().unwrap();
        assert_eq!(
            restored.maintainer().clusters(),
            ing.maintainer().clusters()
        );
        assert_eq!(restored.col_stats(), ing.col_stats());
        assert_eq!(restored.counters(), ing.counters());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_ingestor_roundtrips() {
        // Before warm-up there are no clusters; dim must still survive.
        let ing =
            ResilientIngestor::new(3, MaintainerConfig::new(4), IngestPolicy::default()).unwrap();
        let path = tmp_file("empty.json");
        save_checkpoint(&path, &CheckpointPayload::capture(&ing, 0)).unwrap();
        let restored = load_checkpoint(&path).unwrap().restore().unwrap();
        assert_eq!(restored.dim(), 3);
        assert_eq!(restored.maintainer().num_clusters(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_is_detected() {
        let ing = fed_ingestor(30);
        let path = tmp_file("corrupt.json");
        save_checkpoint(&path, &CheckpointPayload::capture(&ing, 30)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip a digit inside the embedded payload (watermark value).
        let idx = text.find("watermark").unwrap();
        let digit = text[idx..].find(|c: char| c.is_ascii_digit()).unwrap() + idx;
        let mut bytes = text.into_bytes();
        bytes[digit] = if bytes[digit] == b'9' {
            b'8'
        } else {
            bytes[digit] + 1
        };
        std::fs::write(&path, &bytes).unwrap();
        let e = load_checkpoint(&path).unwrap_err();
        assert!(matches!(e, UdmError::CorruptSnapshot { .. }), "{e:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_detected() {
        let ing = fed_ingestor(30);
        let path = tmp_file("truncated.json");
        save_checkpoint(&path, &CheckpointPayload::capture(&ing, 30)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let e = load_checkpoint(&path).unwrap_err();
        assert!(matches!(e, UdmError::CorruptSnapshot { .. }), "{e:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_is_detected() {
        let path = tmp_file("version.json");
        std::fs::write(
            &path,
            "{\"version\":99,\"digest\":\"00\",\"payload\":\"{}\"}",
        )
        .unwrap();
        let e = load_checkpoint(&path).unwrap_err();
        assert!(
            matches!(
                e,
                UdmError::UnsupportedSnapshotVersion {
                    found: 99,
                    supported: SCHEMA_VERSION
                }
            ),
            "{e:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = load_checkpoint(Path::new("/nonexistent/udm/ckpt.json")).unwrap_err();
        assert!(matches!(e, UdmError::Io(_)));
    }

    #[test]
    fn inconsistent_dim_is_corrupt() {
        let ing = fed_ingestor(30);
        let mut payload = CheckpointPayload::capture(&ing, 30);
        payload.dim = 7;
        let e = payload.restore().unwrap_err();
        assert!(matches!(e, UdmError::CorruptSnapshot { .. }), "{e:?}");
    }

    #[test]
    fn driver_checkpoints_periodically_and_skips_replay() {
        let path = tmp_file("driver.json");
        std::fs::remove_file(&path).ok();
        let ing =
            ResilientIngestor::new(2, MaintainerConfig::new(4), IngestPolicy::default()).unwrap();
        let mut driver = CheckpointDriver::new(ing, path.clone(), 10).unwrap();
        for i in 0..25 {
            let obs = driver.observe(&rec(i, (i % 5) as f64)).unwrap();
            assert!(obs.is_some());
        }
        // 25 records, interval 10: last checkpoint covers seq < 20.
        let payload = load_checkpoint(&path).unwrap();
        assert_eq!(payload.next_seq, 20);
        // Replay from scratch into the recovered driver: the first 20
        // records are skipped, the tail is processed.
        let mut recovered = CheckpointDriver::recover(path.clone(), 10).unwrap();
        let mut processed = 0;
        for i in 0..25 {
            if recovered
                .observe(&rec(i, (i % 5) as f64))
                .unwrap()
                .is_some()
            {
                processed += 1;
            }
        }
        assert_eq!(processed, 5);
        assert_eq!(recovered.ingestor().counters().arrivals, 25);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_interval_rejected() {
        let ing =
            ResilientIngestor::new(1, MaintainerConfig::new(2), IngestPolicy::default()).unwrap();
        assert!(CheckpointDriver::new(ing, tmp_file("zero.json"), 0).is_err());
        assert!(CheckpointDriver::recover(tmp_file("zero.json"), 0).is_err());
    }

    #[test]
    fn finish_drains_and_persists() {
        let path = tmp_file("finish.json");
        std::fs::remove_file(&path).ok();
        let policy = IngestPolicy {
            min_stats_for_repair: 1_000_000,
            retry_backoff: 1_000_000,
            ..IngestPolicy::default()
        };
        let ing = ResilientIngestor::new(2, MaintainerConfig::new(4), policy).unwrap();
        let mut driver = CheckpointDriver::new(ing, path.clone(), 100).unwrap();
        for i in 0..20 {
            driver.observe(&rec(i, i as f64)).unwrap();
        }
        let mut bad = rec(20, 3.0);
        bad.values[0] = f64::NAN;
        driver.observe(&bad).unwrap();
        let (drained, ing) = driver.finish().unwrap();
        assert_eq!(drained.len(), 1);
        assert!(ing.quarantine().is_empty());
        // The final checkpoint reflects the drained state.
        let payload = load_checkpoint(&path).unwrap();
        assert!(payload.quarantine.is_empty());
        assert_eq!(payload.counters.released, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_rotates_previous_generation() {
        let path = tmp_file("rotate.json");
        let prev = prev_path(&path);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&prev).ok();
        let ing = fed_ingestor(30);
        save_checkpoint(&path, &CheckpointPayload::capture(&ing, 10)).unwrap();
        assert!(!prev.exists(), "first save has nothing to rotate");
        save_checkpoint(&path, &CheckpointPayload::capture(&ing, 20)).unwrap();
        assert_eq!(load_checkpoint(&path).unwrap().next_seq, 20);
        assert_eq!(load_checkpoint(&prev).unwrap().next_seq, 10);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&prev).ok();
    }

    #[test]
    fn fallback_recovers_from_truncated_latest() {
        let path = tmp_file("fallback.json");
        let prev = prev_path(&path);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&prev).ok();
        let ing = fed_ingestor(30);
        save_checkpoint(&path, &CheckpointPayload::capture(&ing, 10)).unwrap();
        save_checkpoint(&path, &CheckpointPayload::capture(&ing, 20)).unwrap();
        // Truncate the latest generation mid-"write".
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 3]).unwrap();
        assert!(load_checkpoint(&path).is_err());
        let payload = load_checkpoint_with_fallback(&path).unwrap();
        assert_eq!(payload.next_seq, 10);
        // Both generations damaged: the latest file's error surfaces.
        std::fs::write(&prev, b"junk").unwrap();
        let e = load_checkpoint_with_fallback(&path).unwrap_err();
        assert!(matches!(e, UdmError::CorruptSnapshot { .. }), "{e:?}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&prev).ok();
    }

    #[test]
    fn point_roundtrip_sanity_for_bit_identity() {
        // The property the crash drill rests on: serde_json round-trips
        // f64 exactly.
        let p = UncertainPoint::new(vec![0.1 + 0.2, 1e-300], vec![0.3, 0.0]).unwrap();
        let snap_text = serde_json::to_string(&p.values().to_vec()).unwrap();
        let back: Vec<f64> = serde_json::from_str(&snap_text).unwrap();
        assert_eq!(back[0].to_bits(), p.value(0).to_bits());
        assert_eq!(back[1].to_bits(), p.value(1).to_bits());
    }
}
