//! Micro-cluster kernel density estimation (Eqs. 9–10).
//!
//! Each micro-cluster contributes one error-based kernel centred at its
//! centroid with width `√(h² + Δ(C)²)` (Eq. 9), weighted by its member
//! count (Eq. 10):
//!
//! ```text
//! f^Q(x) = (1/N) · Σ_i n(C_i) · Q'_h(x − c(C_i), Δ(C_i))
//! ```
//!
//! Evaluation cost is `O(q·|S|)` per query — independent of the original
//! data size `N`, which is the entire point of the compression (§2.1).
//!
//! ## Columnar hot path
//!
//! The per-query kernel-column cache ([`MicroClusterKde::kernel_columns`])
//! is built from a lazily derived structure-of-arrays layout: centroids,
//! squared spreads and the diff-independent kernel factors stored
//! dimension-major, so each dimension's column is one contiguous unrolled
//! loop (`udm_kde::chunked`) instead of a strided gather over
//! pseudo-point structs. The scalar builder
//! ([`MicroClusterKde::kernel_columns_scalar`]) remains the bit-for-bit
//! reference; the naive [`MicroClusterKde::density_subspace_with_error`]
//! loop is the end-to-end oracle.

use crate::feature::MicroCluster;
use crate::pseudo::PseudoPoint;
use std::sync::OnceLock;
use udm_core::num::{clamped_sqrt, ensure_finite_slice, ensure_finite_slice_opt, f64_from_count};
use udm_core::{Result, Subspace, UdmError};
use udm_kde::{chunked, ErrorKernelForm, GaussianErrorKernel, KdeConfig, KernelColumns};

/// Precomputed dimension-major (SoA) pseudo-point statistics for the
/// columnar kernel build.
///
/// Each vector holds `rows × dim` values with column `j` contiguous at
/// `[j·rows, (j+1)·rows)`, so the per-dimension build loop streams
/// through memory. `prefs`/`two_vars` are the diff-independent factors
/// of the error-based kernel at `ψ = Δ_j(C_i)`
/// ([`GaussianErrorKernel::factors`]); `delta2` keeps `Δ²` for queries
/// that convolve their own error (`ψ` then varies per query and the
/// factors cannot be precomputed).
#[derive(Debug, Clone, Default)]
struct ColumnLayout {
    centroids: Vec<f64>,
    delta2: Vec<f64>,
    prefs: Vec<f64>,
    two_vars: Vec<f64>,
    weights: Vec<f64>,
    /// Any (row, dim) pair hit the degenerate point-mass kernel
    /// (`h = ψ = 0`): the columnar factored build cannot represent it,
    /// so column builds route through the scalar reference path.
    degenerate: bool,
}

/// Lazily built [`ColumnLayout`], excluded from serialization.
///
/// The layout is derived state: it is fully reconstructible from the
/// pseudo-points and bandwidths, so it serializes as `null` and
/// deserializes to the empty (unbuilt) cache — persisted models from
/// before the columnar path load unchanged, and round-tripping a model
/// never embeds redundant data in the JSON.
#[derive(Debug, Clone, Default)]
struct LayoutCache(OnceLock<ColumnLayout>);

impl serde::Serialize for LayoutCache {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for LayoutCache {
    fn from_value(_: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        Ok(LayoutCache::default())
    }
}

/// Density estimator over micro-cluster summaries.
///
/// Built once from a slice of clusters (one pre-processing step, as in
/// §3); queries can then be evaluated over any subspace without touching
/// the original data.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MicroClusterKde {
    pseudos: Vec<PseudoPoint>,
    bandwidths: Vec<f64>,
    kernel: GaussianErrorKernel,
    total_n: u64,
    dim: usize,
    layout: LayoutCache,
}

impl MicroClusterKde {
    /// Fits the estimator from micro-cluster statistics.
    ///
    /// Bandwidths follow the configured rule using the *global* column
    /// standard deviations reconstructed from the aggregated cluster
    /// statistics (`Σ CF1`, `Σ CF2`, `Σ n`), and `N = Σ n(C_i)` — i.e. the
    /// same `1.06·σ·N^{−1/5}` the exact estimator would use, recovered
    /// without a second pass over the data.
    ///
    /// `config.error_adjusted` selects whether pseudo-point errors include
    /// the `EF2` term (Lemma 1) or only the within-cluster spread, which is
    /// the unadjusted baseline's behaviour.
    ///
    /// # Errors
    ///
    /// [`UdmError::EmptyDataset`] when `clusters` is empty or all empty;
    /// [`UdmError::DimensionMismatch`] on ragged dimensionality.
    pub fn fit(clusters: &[MicroCluster], config: KdeConfig) -> Result<Self> {
        let non_empty: Vec<&MicroCluster> = clusters.iter().filter(|c| !c.is_empty()).collect();
        let first = non_empty.first().ok_or(UdmError::EmptyDataset)?;
        let dim = first.dim();
        for c in &non_empty {
            if c.dim() != dim {
                return Err(UdmError::DimensionMismatch {
                    expected: dim,
                    actual: c.dim(),
                });
            }
        }

        // Aggregate global statistics to recover per-dimension sigma and N.
        let mut agg = MicroCluster::new(dim);
        for c in &non_empty {
            agg.merge(c)?;
        }
        let total_n = agg.n();
        let sigmas: Vec<f64> = (0..dim).map(|j| clamped_sqrt(agg.variance(j))).collect();
        let bandwidths = config
            .bandwidth
            .bandwidths_from_sigmas(&sigmas, usize::try_from(total_n).unwrap_or(usize::MAX))?;

        let pseudos = non_empty
            .iter()
            .map(|c| PseudoPoint::from_cluster(c, config.error_adjusted))
            .collect::<Result<Vec<_>>>()?;

        Ok(MicroClusterKde {
            pseudos,
            bandwidths,
            kernel: GaussianErrorKernel::new(config.form),
            total_n,
            dim,
            layout: LayoutCache::default(),
        })
    }

    /// Fits with explicitly supplied per-dimension bandwidths (used by the
    /// classifier so class-conditional densities and the global density
    /// share one bandwidth vector, keeping Eq. 11's ratio consistent).
    pub fn fit_with_bandwidths(
        clusters: &[MicroCluster],
        bandwidths: Vec<f64>,
        form: ErrorKernelForm,
        error_adjusted: bool,
    ) -> Result<Self> {
        let non_empty: Vec<&MicroCluster> = clusters.iter().filter(|c| !c.is_empty()).collect();
        let first = non_empty.first().ok_or(UdmError::EmptyDataset)?;
        let dim = first.dim();
        if bandwidths.len() != dim {
            return Err(UdmError::DimensionMismatch {
                expected: dim,
                actual: bandwidths.len(),
            });
        }
        for &h in &bandwidths {
            if !(h.is_finite() && h > 0.0) {
                return Err(UdmError::InvalidValue {
                    what: "bandwidth",
                    value: h,
                });
            }
        }
        let mut total_n = 0;
        let mut pseudos = Vec::with_capacity(non_empty.len());
        for c in &non_empty {
            if c.dim() != dim {
                return Err(UdmError::DimensionMismatch {
                    expected: dim,
                    actual: c.dim(),
                });
            }
            total_n += c.n();
            pseudos.push(PseudoPoint::from_cluster(c, error_adjusted)?);
        }
        Ok(MicroClusterKde {
            pseudos,
            bandwidths,
            kernel: GaussianErrorKernel::new(form),
            total_n,
            dim,
            layout: LayoutCache::default(),
        })
    }

    /// Builds an estimator directly from pseudo-points — the entry the
    /// coreset backend uses to wrap a *reduced* pseudo-point set in the
    /// same (columnar-cached) evaluation machinery as a fitted model.
    ///
    /// `total_n` is the original point count `N` the mixture normalizes
    /// by; pseudo-point weights may sum to less when a reduction merged
    /// or dropped mass — the caller owns that accounting.
    ///
    /// # Errors
    ///
    /// [`UdmError::EmptyDataset`] on an empty pseudo-point set or
    /// `total_n == 0`; [`UdmError::DimensionMismatch`] on ragged
    /// pseudo-points or a wrong-arity bandwidth vector;
    /// [`UdmError::InvalidValue`] on non-positive bandwidths.
    pub fn from_pseudo_points(
        pseudos: Vec<PseudoPoint>,
        bandwidths: Vec<f64>,
        form: ErrorKernelForm,
        total_n: u64,
    ) -> Result<Self> {
        let first = pseudos.first().ok_or(UdmError::EmptyDataset)?;
        if total_n == 0 {
            return Err(UdmError::EmptyDataset);
        }
        let dim = first.dim();
        if bandwidths.len() != dim {
            return Err(UdmError::DimensionMismatch {
                expected: dim,
                actual: bandwidths.len(),
            });
        }
        for &h in &bandwidths {
            if !(h.is_finite() && h > 0.0) {
                return Err(UdmError::InvalidValue {
                    what: "bandwidth",
                    value: h,
                });
            }
        }
        for p in &pseudos {
            if p.dim() != dim || p.delta.len() != dim {
                return Err(UdmError::DimensionMismatch {
                    expected: dim,
                    actual: p.dim(),
                });
            }
        }
        Ok(MicroClusterKde {
            pseudos,
            bandwidths,
            kernel: GaussianErrorKernel::new(form),
            total_n,
            dim,
            layout: LayoutCache::default(),
        })
    }

    /// Dimensionality of the estimator.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The pseudo-points of the mixture, in fit order.
    pub fn pseudo_points(&self) -> &[PseudoPoint] {
        &self.pseudos
    }

    /// The kernel normalization form the estimator was fitted with.
    pub fn kernel_form(&self) -> ErrorKernelForm {
        self.kernel.form()
    }

    /// Total number of original points represented (`N`).
    pub fn total_points(&self) -> u64 {
        self.total_n
    }

    /// Number of pseudo-points (micro-clusters) in the mixture.
    pub fn num_pseudo_points(&self) -> usize {
        self.pseudos.len()
    }

    /// The fitted (or supplied) per-dimension bandwidths.
    pub fn bandwidths(&self) -> &[f64] {
        &self.bandwidths
    }

    /// Density at `x` over the full dimensionality (Eq. 10).
    pub fn density(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: x.len(),
            });
        }
        self.density_subspace(x, Subspace::full(self.dim)?)
    }

    /// Density at `x` over subspace `S` — the compressed analogue of the
    /// exact `g(x, S, D)`. `x` is in full-dimensional coordinates.
    pub fn density_subspace(&self, x: &[f64], subspace: Subspace) -> Result<f64> {
        self.density_subspace_with_error(x, None, subspace)
    }

    /// Like [`Self::density_subspace`], but additionally convolves each
    /// kernel with the *query point's own* error `ψ(x)`:
    /// the per-dimension kernel variance becomes `h² + Δ² + ψ_j(x)²`.
    ///
    /// This is the density of observing the noisy measurement `x` under
    /// the mixture — the paper's Figure 1 scenario, where the test
    /// example's own error boundary determines which training structure it
    /// could plausibly coincide with. With `query_errors = None` (or all
    /// zeros) it reduces to the plain estimate.
    pub fn density_subspace_with_error(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
        subspace: Subspace,
    ) -> Result<f64> {
        if x.len() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: x.len(),
            });
        }
        if let Some(errs) = query_errors {
            if errs.len() != self.dim {
                return Err(UdmError::DimensionMismatch {
                    expected: self.dim,
                    actual: errs.len(),
                });
            }
        }
        subspace.validate_for(self.dim)?;
        if subspace.is_empty() {
            return Err(UdmError::InvalidConfig(
                "cannot evaluate a density over the empty subspace".into(),
            ));
        }
        ensure_finite_slice("query coordinate", x)?;
        ensure_finite_slice_opt("query error", query_errors)?;
        let mut sum = 0.0;
        // Tallied locally, published once per query: no atomics in the loop.
        let mut evals: u64 = 0;
        for p in &self.pseudos {
            let mut prod = f64_from_count(p.weight);
            for j in subspace.dims() {
                let psi = match query_errors {
                    Some(errs) => clamped_sqrt(p.delta[j] * p.delta[j] + errs[j] * errs[j]),
                    None => p.delta[j],
                };
                prod *= self
                    .kernel
                    .evaluate(x[j] - p.centroid[j], self.bandwidths[j], psi);
                evals += 1;
                // udm-lint: allow(UDM002) exact underflow short-circuit (bit-for-bit cache contract)
                if prod == 0.0 {
                    break;
                }
            }
            sum += prod;
        }
        udm_observe::counter_add!("udm_microcluster_kernel_evals_total", evals);
        Ok(sum / f64_from_count(self.total_n))
    }

    /// Builds the per-query kernel-column cache for `x` (optionally
    /// convolved with the query's own error, as in
    /// [`Self::density_subspace_with_error`]): every per-dimension
    /// kernel evaluation of every pseudo-point, computed once and
    /// reusable across all subspace queries of the same test point.
    ///
    /// [`KernelColumns::density`] on the result is bit-for-bit identical
    /// to [`Self::density_subspace_with_error`] for every valid
    /// subspace, including the `prod == 0.0` underflow short-circuit
    /// (the cached row product hits the same hard zero in the same
    /// dimension order).
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] on wrong query or error arity.
    pub fn kernel_columns(&self, x: &[f64], query_errors: Option<&[f64]>) -> Result<KernelColumns> {
        self.validate_query(x, query_errors)?;
        let layout = self.layout();
        if layout.degenerate {
            // Point-mass kernels (∞/0) have no factored form; the scalar
            // reference builder handles them, and KernelColumns routes
            // the resulting non-finite cache through its row-wise path.
            return self.build_scalar(x, query_errors);
        }
        match query_errors {
            None => self.build_columnar(x, layout, udm_kde::hot_exp),
            Some(errs) => self.build_columnar_with_errors(x, errs, layout),
        }
    }

    /// The scalar reference column builder: row-major kernel evaluations
    /// in the exact order of the naive density loop. This is the
    /// correctness oracle the columnar build is tested against, and the
    /// fallback for degenerate (point-mass) kernels.
    ///
    /// # Errors
    ///
    /// As [`Self::kernel_columns`].
    pub fn kernel_columns_scalar(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
    ) -> Result<KernelColumns> {
        self.validate_query(x, query_errors)?;
        self.build_scalar(x, query_errors)
    }

    #[doc(hidden)]
    /// Columnar build with the bounded-error exponential *explicitly*,
    /// regardless of the `fast-math` feature: the benchmark suite A/Bs
    /// the exact and fast builds inside one binary with this.
    pub fn kernel_columns_fastexp(&self, x: &[f64]) -> Result<KernelColumns> {
        self.validate_query(x, None)?;
        let layout = self.layout();
        if layout.degenerate {
            return self.build_scalar(x, None);
        }
        // udm-lint: allow(UDM008) bench-only A/B entry point, documented above; default-build callers use kernel_columns
        self.build_columnar(x, layout, udm_kde::fast_exp)
    }

    fn validate_query(&self, x: &[f64], query_errors: Option<&[f64]>) -> Result<()> {
        if x.len() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: x.len(),
            });
        }
        if let Some(errs) = query_errors {
            if errs.len() != self.dim {
                return Err(UdmError::DimensionMismatch {
                    expected: self.dim,
                    actual: errs.len(),
                });
            }
        }
        ensure_finite_slice("query coordinate", x)?;
        ensure_finite_slice_opt("query error", query_errors)?;
        Ok(())
    }

    /// The lazily built SoA layout (first call pays the transpose; all
    /// later column builds stream through it).
    fn layout(&self) -> &ColumnLayout {
        self.layout.0.get_or_init(|| {
            let rows = self.pseudos.len();
            let dim = self.dim;
            let mut layout = ColumnLayout {
                centroids: vec![0.0; rows * dim],
                delta2: vec![0.0; rows * dim],
                prefs: vec![0.0; rows * dim],
                two_vars: vec![0.0; rows * dim],
                weights: Vec::with_capacity(rows),
                degenerate: false,
            };
            for (r, p) in self.pseudos.iter().enumerate() {
                layout.weights.push(f64_from_count(p.weight));
                for j in 0..dim {
                    let at = j * rows + r;
                    layout.centroids[at] = p.centroid[j];
                    layout.delta2[at] = p.delta[j] * p.delta[j];
                    match self.kernel.factors(self.bandwidths[j], p.delta[j]) {
                        Some((pref, two_var)) => {
                            layout.prefs[at] = pref;
                            layout.two_vars[at] = two_var;
                        }
                        None => layout.degenerate = true,
                    }
                }
            }
            layout
        })
    }

    /// Columnar build for plain queries: one [`chunked::gaussian_kernel_row`]
    /// per dimension over the precomputed factors — the same operations
    /// as [`GaussianErrorKernel::evaluate`] per element, so the cache is
    /// bit-identical to the scalar builder's under the same `exp`.
    fn build_columnar<F: Fn(f64) -> f64 + Copy>(
        &self,
        x: &[f64],
        layout: &ColumnLayout,
        exp: F,
    ) -> Result<KernelColumns> {
        let rows = self.pseudos.len();
        let mut cols = vec![0.0; rows * self.dim];
        for (j, &xj) in x.iter().enumerate() {
            let span = j * rows..(j + 1) * rows;
            chunked::gaussian_kernel_row(
                &mut cols[span.clone()],
                xj,
                &layout.centroids[span.clone()],
                &layout.prefs[span.clone()],
                &layout.two_vars[span],
                exp,
            );
        }
        self.publish_build_counters(cols.len());
        KernelColumns::from_dim_major(
            self.dim,
            cols,
            Some(layout.weights.clone()),
            f64_from_count(self.total_n),
        )
    }

    /// Columnar build for error-convolved queries: `ψ` depends on the
    /// query's own per-dimension error, so the kernel factors cannot be
    /// precomputed; still dimension-major and contiguous, with `Δ²` and
    /// `ψ_q²` reused from the layout instead of recomputed per element.
    fn build_columnar_with_errors(
        &self,
        x: &[f64],
        errs: &[f64],
        layout: &ColumnLayout,
    ) -> Result<KernelColumns> {
        let rows = self.pseudos.len();
        let mut cols = vec![0.0; rows * self.dim];
        for j in 0..self.dim {
            let e2 = errs[j] * errs[j];
            let base = j * rows;
            let h = self.bandwidths[j];
            let xj = x[j];
            for r in 0..rows {
                let psi = clamped_sqrt(layout.delta2[base + r] + e2);
                cols[base + r] = self
                    .kernel
                    .evaluate(xj - layout.centroids[base + r], h, psi);
            }
        }
        self.publish_build_counters(cols.len());
        KernelColumns::from_dim_major(
            self.dim,
            cols,
            Some(layout.weights.clone()),
            f64_from_count(self.total_n),
        )
    }

    fn build_scalar(&self, x: &[f64], query_errors: Option<&[f64]>) -> Result<KernelColumns> {
        let mut cols = Vec::with_capacity(self.pseudos.len() * self.dim);
        let mut weights = Vec::with_capacity(self.pseudos.len());
        for p in &self.pseudos {
            weights.push(f64_from_count(p.weight));
            for j in 0..self.dim {
                let psi = match query_errors {
                    Some(errs) => clamped_sqrt(p.delta[j] * p.delta[j] + errs[j] * errs[j]),
                    None => p.delta[j],
                };
                cols.push(
                    self.kernel
                        .evaluate(x[j] - p.centroid[j], self.bandwidths[j], psi),
                );
            }
        }
        self.publish_build_counters(cols.len());
        KernelColumns::new(self.dim, cols, Some(weights), f64_from_count(self.total_n))
    }

    fn publish_build_counters(&self, evals: usize) {
        udm_observe::counter_inc!("udm_microcluster_column_builds_total");
        udm_observe::counter_add!(
            "udm_microcluster_kernel_evals_total",
            u64::try_from(evals).unwrap_or(u64::MAX)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintainer::{MaintainerConfig, MicroClusterMaintainer};
    use udm_core::{UncertainDataset, UncertainPoint};
    use udm_kde::quadrature::trapezoid;
    use udm_kde::{BandwidthRule, ErrorKde};

    fn pt(v: f64, e: f64) -> UncertainPoint {
        UncertainPoint::new(vec![v], vec![e]).unwrap()
    }

    fn dataset_1d(n: usize) -> UncertainDataset {
        // deterministic pseudo-random-ish spread with varying errors
        UncertainDataset::from_points(
            (0..n)
                .map(|i| {
                    let x = (i as f64 * 0.618_033_988_749).fract() * 10.0;
                    let e = (i % 5) as f64 * 0.1;
                    pt(x, e)
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_clusters_rejected() {
        assert!(MicroClusterKde::fit(&[], KdeConfig::default()).is_err());
        assert!(MicroClusterKde::fit(&[MicroCluster::new(2)], KdeConfig::default()).is_err());
    }

    #[test]
    fn singleton_clusters_reproduce_exact_kde() {
        // One point per cluster (q = N): the micro-cluster density must
        // equal the exact point-based density: each pseudo-point has zero
        // bias so Δ = ψ, and bandwidths agree by construction.
        let d = dataset_1d(40);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(40)).unwrap();
        let mc = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
        let exact = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        for x in [-1.0, 0.0, 2.5, 5.0, 9.9, 12.0] {
            let a = mc.density(&[x]).unwrap();
            let b = exact.density(&[x]).unwrap();
            assert!((a - b).abs() < 1e-9, "x={x}: {a} vs {b}");
        }
    }

    #[test]
    fn compressed_density_approximates_exact() {
        let d = dataset_1d(500);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(60)).unwrap();
        let mc = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
        let exact = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        // L1-style check over a coarse grid: compression error is bounded.
        let mut total_abs = 0.0;
        let mut total = 0.0;
        for i in 0..100 {
            let x = -2.0 + 14.0 * i as f64 / 99.0;
            let a = mc.density(&[x]).unwrap();
            let b = exact.density(&[x]).unwrap();
            total_abs += (a - b).abs();
            total += b;
        }
        assert!(
            total_abs / total < 0.2,
            "relative L1 error {}",
            total_abs / total
        );
    }

    #[test]
    fn density_integrates_to_one() {
        let d = dataset_1d(200);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(20)).unwrap();
        let mc = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
        let mass = trapezoid(|x| mc.density(&[x]).unwrap(), -40.0, 50.0, 40_001);
        assert!((mass - 1.0).abs() < 1e-6, "mass={mass}");
    }

    #[test]
    fn weighting_by_cluster_size() {
        // Two clusters: one with 9 points at 0, one with 1 point at 10.
        let mut big = MicroCluster::new(1);
        for _ in 0..9 {
            big.insert(&pt(0.0, 0.0)).unwrap();
        }
        let small = MicroCluster::from_point(&pt(10.0, 0.0));
        let mc = MicroClusterKde::fit_with_bandwidths(
            &[big, small],
            vec![1.0],
            ErrorKernelForm::Normalized,
            true,
        )
        .unwrap();
        let at_big = mc.density(&[0.0]).unwrap();
        let at_small = mc.density(&[10.0]).unwrap();
        assert!((at_big / at_small - 9.0).abs() < 1e-6);
    }

    #[test]
    fn subspace_evaluation_ignores_other_dims() {
        let points = vec![
            UncertainPoint::new(vec![0.0, 100.0], vec![0.1, 5.0]).unwrap(),
            UncertainPoint::new(vec![1.0, -100.0], vec![0.2, 5.0]).unwrap(),
            UncertainPoint::new(vec![2.0, 0.0], vec![0.0, 5.0]).unwrap(),
        ];
        let d = UncertainDataset::from_points(points).unwrap();
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(3)).unwrap();
        let mc = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
        let s0 = Subspace::singleton(0).unwrap();
        let a = mc.density_subspace(&[1.0, 999.0], s0).unwrap();
        let b = mc.density_subspace(&[1.0, -999.0], s0).unwrap();
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn unadjusted_excludes_member_errors() {
        let mut c = MicroCluster::new(1);
        c.insert(&pt(0.0, 5.0)).unwrap();
        c.insert(&pt(1.0, 5.0)).unwrap();
        let adj = MicroClusterKde::fit_with_bandwidths(
            std::slice::from_ref(&c),
            vec![0.5],
            ErrorKernelForm::Normalized,
            true,
        )
        .unwrap();
        let unadj = MicroClusterKde::fit_with_bandwidths(
            std::slice::from_ref(&c),
            vec![0.5],
            ErrorKernelForm::Normalized,
            false,
        )
        .unwrap();
        // Adjusted spreads much wider -> lower peak at the centroid.
        assert!(adj.density(&[0.5]).unwrap() < unadj.density(&[0.5]).unwrap());
    }

    #[test]
    fn fit_with_bandwidths_validates() {
        let c = MicroCluster::from_point(&pt(0.0, 0.0));
        assert!(MicroClusterKde::fit_with_bandwidths(
            std::slice::from_ref(&c),
            vec![1.0, 1.0],
            ErrorKernelForm::Normalized,
            true
        )
        .is_err());
        assert!(MicroClusterKde::fit_with_bandwidths(
            std::slice::from_ref(&c),
            vec![0.0],
            ErrorKernelForm::Normalized,
            true
        )
        .is_err());
    }

    #[test]
    fn query_arity_validated() {
        let d = dataset_1d(10);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(4)).unwrap();
        let mc = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
        assert!(mc.density(&[0.0, 1.0]).is_err());
        assert!(mc.density_subspace(&[0.0], Subspace::EMPTY).is_err());
    }

    #[test]
    fn cached_columns_match_naive_bitwise() {
        let points = vec![
            UncertainPoint::new(vec![0.0, 10.0, -3.0], vec![0.1, 0.5, 0.0]).unwrap(),
            UncertainPoint::new(vec![1.0, 12.0, -1.0], vec![0.0, 0.2, 0.4]).unwrap(),
            UncertainPoint::new(vec![2.0, 11.0, -2.0], vec![0.3, 0.1, 0.2]).unwrap(),
            UncertainPoint::new(vec![1.5, 11.5, -2.2], vec![0.2, 0.0, 0.1]).unwrap(),
        ];
        let d = UncertainDataset::from_points(points).unwrap();
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(2)).unwrap();
        let mc = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
        let x = [0.5, 11.5, -2.5];
        for errs in [None, Some([0.3, 0.0, 0.7].as_slice())] {
            let cols = mc.kernel_columns(&x, errs).unwrap();
            // All 7 non-empty subspaces of 3 dimensions.
            for bits in 1u64..8 {
                let s = Subspace::from_bits(bits);
                let naive = mc.density_subspace_with_error(&x, errs, s).unwrap();
                let cached = cols.density(s).unwrap();
                assert_eq!(
                    naive.to_bits(),
                    cached.to_bits(),
                    "subspace {bits:#b}, errs {errs:?}"
                );
            }
        }
        assert!(mc.kernel_columns(&[0.0], None).is_err());
        assert!(mc.kernel_columns(&x, Some(&[0.0])).is_err());
    }

    #[test]
    fn bandwidths_recovered_from_aggregate_match_exact() {
        let d = dataset_1d(100);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(100)).unwrap();
        let mc = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
        let hs = BandwidthRule::Silverman.bandwidths(&d).unwrap();
        assert!((mc.bandwidths()[0] - hs[0]).abs() < 1e-9);
    }
}
