//! Operational diagnostics over micro-cluster summaries.
//!
//! The paper sizes `q` by available main memory and argues the summary's
//! granularity drives downstream quality (Figs. 5, 7). These helpers
//! quantify that granularity — cluster occupancy balance, spatial radii,
//! error mass — so operators can tell *before* mining whether a summary
//! is healthy (e.g. a few clusters holding most of the stream means `q`
//! or the assignment metric needs attention).

use crate::feature::MicroCluster;
use crate::pseudo::PseudoPoint;
use serde::{Deserialize, Serialize};
use udm_core::num::clamped_sqrt;
use udm_core::{Result, UdmError};

/// Aggregate health report over a set of micro-clusters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryDiagnostics {
    /// Number of non-empty clusters.
    pub clusters: usize,
    /// Total points represented.
    pub total_points: u64,
    /// Smallest cluster occupancy.
    pub min_occupancy: u64,
    /// Largest cluster occupancy.
    pub max_occupancy: u64,
    /// Mean cluster occupancy.
    pub mean_occupancy: f64,
    /// Occupancy imbalance: fraction of all points held by the largest
    /// 10% of clusters (0.1 = perfectly balanced, →1 = degenerate).
    pub top_decile_share: f64,
    /// Mean RMS spatial radius (√ of the mean per-dimension variance),
    /// averaged over clusters.
    pub mean_radius: f64,
    /// Mean pseudo-point error ‖Δ(C)‖/√d, averaged over clusters — how
    /// much smoothing Lemma 1 will inject downstream.
    pub mean_delta: f64,
}

impl std::fmt::Display for SummaryDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} clusters / {} points (occupancy {}..{}, mean {:.1}, top-decile share {:.2}); \
             mean radius {:.3}, mean Δ {:.3}",
            self.clusters,
            self.total_points,
            self.min_occupancy,
            self.max_occupancy,
            self.mean_occupancy,
            self.top_decile_share,
            self.mean_radius,
            self.mean_delta
        )
    }
}

/// Computes diagnostics; empty clusters are ignored.
///
/// # Errors
///
/// [`UdmError::EmptyDataset`] when every cluster is empty.
pub fn diagnose(clusters: &[MicroCluster]) -> Result<SummaryDiagnostics> {
    let non_empty: Vec<&MicroCluster> = clusters.iter().filter(|c| !c.is_empty()).collect();
    if non_empty.is_empty() {
        return Err(UdmError::EmptyDataset);
    }
    let mut occupancies: Vec<u64> = non_empty.iter().map(|c| c.n()).collect();
    occupancies.sort_unstable();
    let total_points: u64 = occupancies.iter().sum();
    let clusters_n = non_empty.len();

    // ceil(n·0.1) <= n, so the cast back to usize cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    let top_decile_count = (clusters_n as f64 * 0.1).ceil() as usize;
    let top_decile_points: u64 = occupancies.iter().rev().take(top_decile_count.max(1)).sum();

    let mut radius_sum = 0.0;
    let mut delta_sum = 0.0;
    for c in &non_empty {
        let d = c.dim() as f64;
        let mean_var: f64 = (0..c.dim()).map(|j| c.variance(j)).sum::<f64>() / d;
        radius_sum += clamped_sqrt(mean_var);
        let pseudo = PseudoPoint::from_cluster(c, true)?;
        let delta_norm_sq: f64 = pseudo.delta.iter().map(|x| x * x).sum();
        delta_sum += clamped_sqrt(delta_norm_sq / d);
    }

    Ok(SummaryDiagnostics {
        clusters: clusters_n,
        total_points,
        min_occupancy: occupancies[0],
        max_occupancy: occupancies[clusters_n - 1],
        mean_occupancy: total_points as f64 / clusters_n as f64,
        top_decile_share: top_decile_points as f64 / total_points as f64,
        mean_radius: radius_sum / clusters_n as f64,
        mean_delta: delta_sum / clusters_n as f64,
    })
}

/// Health report for a fault-tolerant ingest run: the policy counters
/// plus (when the summary is non-empty) the usual summary diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestDiagnostics {
    /// Per-verdict counters.
    pub counters: crate::ingest::IngestCounters,
    /// Records currently parked in quarantine.
    pub quarantine_len: usize,
    /// Highest admitted timestamp.
    pub watermark: u64,
    /// Summary health, `None` while the summary is still empty.
    pub summary: Option<SummaryDiagnostics>,
}

impl std::fmt::Display for IngestDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}; {} in quarantine; watermark {}",
            self.counters, self.quarantine_len, self.watermark
        )?;
        if let Some(s) = &self.summary {
            write!(f, "; {s}")?;
        }
        Ok(())
    }
}

/// Computes ingest diagnostics for a resilient ingestor.
pub fn diagnose_ingest(ingestor: &crate::ingest::ResilientIngestor) -> IngestDiagnostics {
    IngestDiagnostics {
        counters: *ingestor.counters(),
        quarantine_len: ingestor.quarantine().len(),
        watermark: ingestor.watermark(),
        summary: diagnose(ingestor.maintainer().clusters()).ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintainer::{MaintainerConfig, MicroClusterMaintainer};
    use udm_core::{UncertainDataset, UncertainPoint};

    fn uniformish(n: usize, psi: f64) -> UncertainDataset {
        UncertainDataset::from_points(
            (0..n)
                .map(|i| {
                    let x = (i as f64 * 0.618_033_988_749).fract() * 10.0;
                    UncertainPoint::new(vec![x], vec![psi]).unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_input_rejected() {
        assert!(diagnose(&[]).is_err());
        assert!(diagnose(&[MicroCluster::new(2)]).is_err());
    }

    #[test]
    fn totals_and_occupancy_ranges() {
        let d = uniformish(500, 0.1);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(20)).unwrap();
        let diag = diagnose(m.clusters()).unwrap();
        assert_eq!(diag.clusters, 20);
        assert_eq!(diag.total_points, 500);
        assert!(diag.min_occupancy >= 1);
        assert!(diag.max_occupancy <= 500);
        assert!((diag.mean_occupancy - 25.0).abs() < 1e-12);
        assert!(diag.min_occupancy <= diag.max_occupancy);
    }

    #[test]
    fn balanced_summary_has_low_decile_share() {
        let d = uniformish(2000, 0.0);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(20)).unwrap();
        let diag = diagnose(m.clusters()).unwrap();
        // Uniform-ish data: top 10% of clusters should hold well under
        // half the stream.
        assert!(diag.top_decile_share < 0.5, "{diag:?}");
        assert!(diag.top_decile_share >= 0.1 - 1e-9);
    }

    #[test]
    fn degenerate_summary_detected() {
        // One dominant mode: most points collapse into few clusters.
        let mut points: Vec<UncertainPoint> = (0..950)
            .map(|_| UncertainPoint::exact(vec![0.0]).unwrap())
            .collect();
        for i in 0..50 {
            points.push(UncertainPoint::exact(vec![100.0 + i as f64]).unwrap());
        }
        let d = UncertainDataset::from_points(points).unwrap();
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(10)).unwrap();
        let diag = diagnose(m.clusters()).unwrap();
        assert!(diag.top_decile_share > 0.5, "{diag:?}");
    }

    #[test]
    fn mean_delta_tracks_member_errors() {
        let clean = uniformish(400, 0.0);
        let noisy = uniformish(400, 3.0);
        let mc = |d: &UncertainDataset| {
            let m = MicroClusterMaintainer::from_dataset(d, MaintainerConfig::new(15)).unwrap();
            diagnose(m.clusters()).unwrap()
        };
        let a = mc(&clean);
        let b = mc(&noisy);
        assert!(b.mean_delta > a.mean_delta + 2.0, "{a:?} vs {b:?}");
        // Radius (value spread) is identical — only the error mass grew.
        assert!((a.mean_radius - b.mean_radius).abs() < 0.2);
    }

    #[test]
    fn display_renders_summary() {
        let d = uniformish(100, 0.2);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(5)).unwrap();
        let text = diagnose(m.clusters()).unwrap().to_string();
        assert!(text.contains("5 clusters / 100 points"), "{text}");
    }

    #[test]
    fn ingest_diagnostics_surface_counters() {
        use crate::ingest::{IngestPolicy, ResilientIngestor};
        use udm_data::fault::RawRecord;
        let mut ing =
            ResilientIngestor::new(1, MaintainerConfig::new(3), IngestPolicy::default()).unwrap();
        let empty = diagnose_ingest(&ing);
        assert!(empty.summary.is_none());
        for i in 0..40u64 {
            let p = UncertainPoint::new(vec![(i % 9) as f64], vec![0.1]).unwrap();
            ing.observe(&RawRecord::from_point(i, &p.with_timestamp(i)))
                .unwrap();
        }
        let diag = diagnose_ingest(&ing);
        assert_eq!(diag.counters.accepted, 40);
        assert_eq!(diag.quarantine_len, 0);
        assert_eq!(diag.watermark, 39);
        assert!(diag.summary.is_some());
        let text = diag.to_string();
        assert!(text.contains("40 arrivals"), "{text}");
        assert!(text.contains("watermark 39"), "{text}");
    }

    #[test]
    fn ingest_diagnostics_report_high_water_and_retry_exhaustion() {
        use crate::ingest::{IngestPolicy, ResilientIngestor};
        use udm_data::fault::RawRecord;
        let policy = IngestPolicy {
            // Statistics never mature, so damaged records sit in
            // quarantine until their retry budget runs out.
            min_stats_for_repair: 1_000,
            max_retries: 0,
            // Long enough that both damaged records are parked at once
            // before the first retry comes due.
            retry_backoff: 5,
            ..IngestPolicy::default()
        };
        let mut ing = ResilientIngestor::new(2, MaintainerConfig::new(3), policy).unwrap();
        for seq in 0..2u64 {
            let rec = RawRecord {
                seq,
                timestamp: seq,
                values: vec![1.0, f64::NAN],
                errors: vec![0.1, 0.1],
                label: None,
            };
            ing.observe(&rec).unwrap();
        }
        assert_eq!(diagnose_ingest(&ing).counters.quarantine_high_water, 2);
        // Clean arrivals drive the stream past the retry deadline; with a
        // zero retry budget both parked records exhaust and are dropped.
        for seq in 2..10u64 {
            let rec = RawRecord {
                seq,
                timestamp: seq,
                values: vec![1.0, 2.0],
                errors: vec![0.1, 0.1],
                label: None,
            };
            ing.observe(&rec).unwrap();
        }
        let diag = diagnose_ingest(&ing);
        assert_eq!(diag.counters.quarantine_high_water, 2);
        assert_eq!(diag.counters.retry_exhausted, 2);
        assert_eq!(diag.quarantine_len, 0);
        let text = diag.to_string();
        assert!(text.contains("quarantine high-water 2"), "{text}");
        assert!(text.contains("2 retry-exhausted"), "{text}");
    }

    #[test]
    fn radius_tracks_granularity() {
        let d = uniformish(1000, 0.0);
        let coarse = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(4)).unwrap();
        let fine = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(100)).unwrap();
        let dc = diagnose(coarse.clusters()).unwrap();
        let df = diagnose(fine.clusters()).unwrap();
        assert!(dc.mean_radius > df.mean_radius, "{dc:?} vs {df:?}");
    }
}
