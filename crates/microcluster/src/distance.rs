//! Assignment distances, including the error-adjusted metric of Eq. 5.
//!
//! When assigning an uncertain point to the nearest micro-cluster
//! centroid, the paper adjusts for errors dimension-wise:
//!
//! ```text
//! dist(Y, c) = Σ_j max{ 0, (Y_j − c_j)² − ψ_j(Y)² }        (Eq. 5)
//! ```
//!
//! Dimensions whose apparent displacement is within the point's own error
//! contribute nothing — a "best-case scenario along each dimension", which
//! the paper motivates from the behaviour of distance functions for noisy
//! high-dimensional data (Figure 2: a point whose error ellipse is skewed
//! toward centroid 1 should join centroid 1 even if centroid 2 is closer
//! in raw Euclidean terms).

use serde::{Deserialize, Serialize};
use udm_core::UncertainPoint;

/// Squared Euclidean distance between a point's values and a centroid.
#[inline]
pub fn euclidean_sq(values: &[f64], centroid: &[f64]) -> f64 {
    debug_assert_eq!(values.len(), centroid.len());
    values
        .iter()
        .zip(centroid.iter())
        .map(|(&v, &c)| {
            let d = v - c;
            d * d
        })
        .sum()
}

/// The paper's error-adjusted squared distance (Eq. 5):
/// `Σ_j max{0, (Y_j − c_j)² − ψ_j(Y)²}`.
#[inline]
pub fn error_adjusted_sq(point: &UncertainPoint, centroid: &[f64]) -> f64 {
    debug_assert_eq!(point.dim(), centroid.len());
    let mut total = 0.0;
    for (j, &c) in centroid.iter().enumerate() {
        let d = point.value(j) - c;
        let e = point.error(j);
        total += (d * d - e * e).max(0.0);
    }
    total
}

/// Eq. 5 without the `max{0,·}` clamp — an ablation variant that lets
/// dimensions with large errors produce negative contributions.
#[inline]
pub fn error_adjusted_unclamped(point: &UncertainPoint, centroid: &[f64]) -> f64 {
    debug_assert_eq!(point.dim(), centroid.len());
    let mut total = 0.0;
    for (j, &c) in centroid.iter().enumerate() {
        let d = point.value(j) - c;
        let e = point.error(j);
        total += d * d - e * e;
    }
    total
}

/// Which distance the maintainer uses for nearest-centroid assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AssignmentDistance {
    /// The paper's Eq. 5 (default).
    #[default]
    ErrorAdjusted,
    /// Plain squared Euclidean — the error-oblivious baseline.
    Euclidean,
    /// Eq. 5 without the per-dimension clamp (ablation).
    ErrorAdjustedUnclamped,
}

impl AssignmentDistance {
    /// Evaluates the configured distance between `point` and `centroid`.
    #[inline]
    pub fn evaluate(self, point: &UncertainPoint, centroid: &[f64]) -> f64 {
        match self {
            AssignmentDistance::ErrorAdjusted => error_adjusted_sq(point, centroid),
            AssignmentDistance::Euclidean => euclidean_sq(point.values(), centroid),
            AssignmentDistance::ErrorAdjustedUnclamped => error_adjusted_unclamped(point, centroid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(values: &[f64], errors: &[f64]) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec()).unwrap()
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        assert_eq!(euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn error_adjusted_reduces_to_euclidean_at_zero_error() {
        let p = pt(&[1.0, 2.0], &[0.0, 0.0]);
        let c = [4.0, 6.0];
        assert_eq!(error_adjusted_sq(&p, &c), euclidean_sq(p.values(), &c));
    }

    #[test]
    fn within_error_dimension_contributes_zero() {
        // displacement 1.0, error 2.0 -> clamped to 0
        let p = pt(&[0.0], &[2.0]);
        assert_eq!(error_adjusted_sq(&p, &[1.0]), 0.0);
    }

    #[test]
    fn partial_error_subtracts() {
        // displacement 3 (sq 9), error 2 (sq 4) -> 5
        let p = pt(&[0.0], &[2.0]);
        assert!((error_adjusted_sq(&p, &[3.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn figure2_scenario_error_skew_changes_assignment() {
        // The paper's Figure 2: X is closer to centroid 2 in Euclidean
        // terms, but its error is skewed along dimension 0 toward
        // centroid 1, so the error-adjusted distance prefers centroid 1.
        let x = pt(&[0.0, 0.0], &[5.0, 0.1]); // large error along dim 0
        let centroid1 = [4.0, 0.0]; // displaced along the noisy dim
        let centroid2 = [0.0, 3.0]; // displaced along the precise dim

        // Euclidean prefers centroid 2:
        assert!(euclidean_sq(x.values(), &centroid2) < euclidean_sq(x.values(), &centroid1));
        // Error-adjusted prefers centroid 1:
        assert!(error_adjusted_sq(&x, &centroid1) < error_adjusted_sq(&x, &centroid2));
    }

    #[test]
    fn unclamped_can_go_negative() {
        let p = pt(&[0.0], &[3.0]);
        assert!(error_adjusted_unclamped(&p, &[1.0]) < 0.0);
        assert_eq!(error_adjusted_sq(&p, &[1.0]), 0.0);
    }

    #[test]
    fn dispatch_matches_direct_functions() {
        let p = pt(&[1.0, -2.0], &[0.5, 1.5]);
        let c = [0.0, 0.0];
        assert_eq!(
            AssignmentDistance::ErrorAdjusted.evaluate(&p, &c),
            error_adjusted_sq(&p, &c)
        );
        assert_eq!(
            AssignmentDistance::Euclidean.evaluate(&p, &c),
            euclidean_sq(p.values(), &c)
        );
        assert_eq!(
            AssignmentDistance::ErrorAdjustedUnclamped.evaluate(&p, &c),
            error_adjusted_unclamped(&p, &c)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_point_and_centroid() -> impl Strategy<Value = (UncertainPoint, Vec<f64>)> {
        (1usize..6).prop_flat_map(|d| {
            (
                proptest::collection::vec((-50.0f64..50.0, 0.0f64..10.0), d..=d),
                proptest::collection::vec(-50.0f64..50.0, d..=d),
            )
                .prop_map(|(rows, centroid)| {
                    let (vs, es): (Vec<f64>, Vec<f64>) = rows.into_iter().unzip();
                    (UncertainPoint::new(vs, es).unwrap(), centroid)
                })
        })
    }

    proptest! {
        #[test]
        fn error_adjusted_bounded_by_euclidean((p, c) in arb_point_and_centroid()) {
            prop_assert!(error_adjusted_sq(&p, &c) <= euclidean_sq(p.values(), &c) + 1e-12);
        }

        #[test]
        fn error_adjusted_non_negative((p, c) in arb_point_and_centroid()) {
            prop_assert!(error_adjusted_sq(&p, &c) >= 0.0);
        }

        #[test]
        fn monotone_decreasing_in_error((p, c) in arb_point_and_centroid(), scale in 1.0f64..4.0) {
            // Inflate all errors by `scale`; the distance must not increase.
            let inflated = UncertainPoint::new(
                p.values().to_vec(),
                p.errors().iter().map(|e| e * scale).collect(),
            ).unwrap();
            prop_assert!(error_adjusted_sq(&inflated, &c) <= error_adjusted_sq(&p, &c) + 1e-12);
        }

        #[test]
        fn zero_at_centroid((p, _c) in arb_point_and_centroid()) {
            prop_assert_eq!(error_adjusted_sq(&p, p.values()), 0.0);
        }
    }
}
