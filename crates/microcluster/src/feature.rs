//! The micro-cluster sufficient statistics of Definition 1.

use serde::{Deserialize, Serialize};
use udm_core::num::{clamp_non_negative, f64_from_count};
use udm_core::{Result, UdmError, UncertainPoint};

/// The `(3d + 1)`-tuple `CFT(C) = (CF2x, EF2x, CF1x, n)` of Definition 1:
/// per-dimension sums of squared values, squared errors, and values, plus
/// the member count.
///
/// As in BIRCH/CluStream, the statistics are **additive**: inserting a
/// point or merging another cluster only adds component-wise, so clusters
/// can be built in a single pass and combined across shards. All derived
/// quantities (centroid, variance, pseudo-point error) are computed on
/// demand from the sums.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroCluster {
    /// `CF2x`: per-dimension sum of squared data values.
    cf2: Vec<f64>,
    /// `EF2x`: per-dimension sum of squared error values.
    ef2: Vec<f64>,
    /// `CF1x`: per-dimension sum of data values.
    cf1: Vec<f64>,
    /// `n(C)`: number of absorbed points.
    n: u64,
    /// Largest timestamp among absorbed points (CluStream bookkeeping;
    /// not used by the paper's algorithm but cheap to carry).
    last_timestamp: u64,
}

impl MicroCluster {
    /// Creates an empty micro-cluster of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        MicroCluster {
            cf2: vec![0.0; dim],
            ef2: vec![0.0; dim],
            cf1: vec![0.0; dim],
            n: 0,
            last_timestamp: 0,
        }
    }

    /// Creates a cluster seeded with a single point.
    pub fn from_point(point: &UncertainPoint) -> Self {
        let mut c = Self::new(point.dim());
        c.insert(point)
            // udm-lint: allow(UDM001) cluster is sized from the point, dims cannot mismatch
            .expect("dimensionality matches by construction");
        c
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.cf1.len()
    }

    /// Member count `n(C)`.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// `true` if no point has been absorbed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Raw `CF1x` vector (sums of values).
    #[inline]
    pub fn cf1(&self) -> &[f64] {
        &self.cf1
    }

    /// Raw `CF2x` vector (sums of squared values).
    #[inline]
    pub fn cf2(&self) -> &[f64] {
        &self.cf2
    }

    /// Raw `EF2x` vector (sums of squared errors).
    #[inline]
    pub fn ef2(&self) -> &[f64] {
        &self.ef2
    }

    /// Largest timestamp among absorbed points.
    #[inline]
    pub fn last_timestamp(&self) -> u64 {
        self.last_timestamp
    }

    /// Absorbs a point into the statistics (additivity of Definition 1).
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] if the point's dimensionality
    /// differs from the cluster's.
    pub fn insert(&mut self, point: &UncertainPoint) -> Result<()> {
        if point.dim() != self.dim() {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim(),
                actual: point.dim(),
            });
        }
        for j in 0..self.dim() {
            let v = point.value(j);
            let e = point.error(j);
            self.cf1[j] += v;
            self.cf2[j] += v * v;
            self.ef2[j] += e * e;
        }
        self.n += 1;
        self.last_timestamp = self.last_timestamp.max(point.timestamp());
        Ok(())
    }

    /// Merges another cluster into this one (component-wise addition).
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] on differing dimensionality.
    pub fn merge(&mut self, other: &MicroCluster) -> Result<()> {
        if other.dim() != self.dim() {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        for j in 0..self.dim() {
            self.cf1[j] += other.cf1[j];
            self.cf2[j] += other.cf2[j];
            self.ef2[j] += other.ef2[j];
        }
        self.n += other.n;
        self.last_timestamp = self.last_timestamp.max(other.last_timestamp);
        Ok(())
    }

    /// Centroid `c(C) = CF1x / n`. Returns `None` for an empty cluster.
    pub fn centroid(&self) -> Option<Vec<f64>> {
        if self.n == 0 {
            return None;
        }
        let inv = 1.0 / f64_from_count(self.n);
        Some(self.cf1.iter().map(|&s| s * inv).collect())
    }

    /// Centroid coordinate along dimension `j`, `None` when empty.
    #[inline]
    pub fn centroid_coord(&self, j: usize) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.cf1[j] / f64_from_count(self.n))
        }
    }

    /// Within-cluster variance along dimension `j`:
    /// `CF2x_j/n − (CF1x_j/n)²` (clamped at zero against rounding).
    ///
    /// This is the `bias²` average of Lemma 1's proof — the spread of the
    /// members around the pseudo-point.
    pub fn variance(&self, j: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let inv = 1.0 / f64_from_count(self.n);
        let mean = self.cf1[j] * inv;
        // Counted clamp: catastrophic cancellation of CF2/n − mean² is the
        // paper's Lemma 1 failure mode (see udm_core::num).
        clamp_non_negative(self.cf2[j] * inv - mean * mean)
    }

    /// Mean squared member error along dimension `j`: `EF2_j / n`.
    pub fn mean_squared_error(&self, j: usize) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.ef2[j] / f64_from_count(self.n)
        }
    }

    /// Constructs a cluster directly from raw statistics (used by the
    /// snapshot loader).
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] if the vectors disagree in length.
    pub fn from_raw(
        cf2: Vec<f64>,
        ef2: Vec<f64>,
        cf1: Vec<f64>,
        n: u64,
        last_timestamp: u64,
    ) -> Result<Self> {
        if cf2.len() != cf1.len() || ef2.len() != cf1.len() {
            return Err(UdmError::DimensionMismatch {
                expected: cf1.len(),
                actual: cf2.len().max(ef2.len()),
            });
        }
        Ok(MicroCluster {
            cf2,
            ef2,
            cf1,
            n,
            last_timestamp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(values: &[f64], errors: &[f64]) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec()).unwrap()
    }

    #[test]
    fn empty_cluster() {
        let c = MicroCluster::new(3);
        assert_eq!(c.dim(), 3);
        assert!(c.is_empty());
        assert_eq!(c.centroid(), None);
        assert_eq!(c.variance(0), 0.0);
    }

    #[test]
    fn insert_accumulates_sums() {
        let mut c = MicroCluster::new(2);
        c.insert(&pt(&[1.0, 2.0], &[0.5, 0.0])).unwrap();
        c.insert(&pt(&[3.0, 4.0], &[0.5, 1.0])).unwrap();
        assert_eq!(c.n(), 2);
        assert_eq!(c.cf1(), &[4.0, 6.0]);
        assert_eq!(c.cf2(), &[10.0, 20.0]);
        assert_eq!(c.ef2(), &[0.5, 1.0]);
    }

    #[test]
    fn insert_validates_dim() {
        let mut c = MicroCluster::new(2);
        assert!(c.insert(&pt(&[1.0], &[0.0])).is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn centroid_is_mean() {
        let mut c = MicroCluster::new(1);
        for v in [2.0, 4.0, 9.0] {
            c.insert(&pt(&[v], &[0.0])).unwrap();
        }
        assert_eq!(c.centroid().unwrap(), vec![5.0]);
        assert_eq!(c.centroid_coord(0), Some(5.0));
    }

    #[test]
    fn variance_matches_direct_formula() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut c = MicroCluster::new(1);
        for &v in &values {
            c.insert(&pt(&[v], &[0.0])).unwrap();
        }
        assert!((c.variance(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn variance_clamped_non_negative() {
        let mut c = MicroCluster::new(1);
        // identical values can produce tiny negative differences in floats
        for _ in 0..1000 {
            c.insert(&pt(&[0.123_456_789_012_345], &[0.0])).unwrap();
        }
        assert!(c.variance(0) >= 0.0);
        assert!(c.variance(0) < 1e-12);
    }

    #[test]
    fn mean_squared_error_averages_ef2() {
        let mut c = MicroCluster::new(1);
        c.insert(&pt(&[0.0], &[3.0])).unwrap();
        c.insert(&pt(&[0.0], &[4.0])).unwrap();
        assert!((c.mean_squared_error(0) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_bulk_insert() {
        let points: Vec<UncertainPoint> = (0..10)
            .map(|i| pt(&[i as f64, (i * i) as f64], &[0.1 * i as f64, 0.2]))
            .collect();
        let mut whole = MicroCluster::new(2);
        for p in &points {
            whole.insert(p).unwrap();
        }
        let mut left = MicroCluster::new(2);
        let mut right = MicroCluster::new(2);
        for p in &points[..4] {
            left.insert(p).unwrap();
        }
        for p in &points[4..] {
            right.insert(p).unwrap();
        }
        left.merge(&right).unwrap();
        assert_eq!(left.n(), whole.n());
        for j in 0..2 {
            assert!((left.cf1()[j] - whole.cf1()[j]).abs() < 1e-9);
            assert!((left.cf2()[j] - whole.cf2()[j]).abs() < 1e-9);
            assert!((left.ef2()[j] - whole.ef2()[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_validates_dim() {
        let mut a = MicroCluster::new(2);
        let b = MicroCluster::new(3);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn timestamps_track_max() {
        let mut c = MicroCluster::new(1);
        c.insert(&pt(&[0.0], &[0.0]).with_timestamp(5)).unwrap();
        c.insert(&pt(&[0.0], &[0.0]).with_timestamp(3)).unwrap();
        assert_eq!(c.last_timestamp(), 5);
    }

    #[test]
    fn from_point_seeds() {
        let c = MicroCluster::from_point(&pt(&[1.0, 2.0], &[0.3, 0.4]));
        assert_eq!(c.n(), 1);
        assert_eq!(c.centroid().unwrap(), vec![1.0, 2.0]);
        assert!((c.ef2()[0] - 0.09).abs() < 1e-12);
    }

    #[test]
    fn from_raw_validates() {
        assert!(MicroCluster::from_raw(vec![1.0], vec![1.0, 2.0], vec![1.0], 1, 0).is_err());
        let c = MicroCluster::from_raw(vec![4.0], vec![0.0], vec![2.0], 1, 7).unwrap();
        assert_eq!(c.centroid().unwrap(), vec![2.0]);
        assert_eq!(c.last_timestamp(), 7);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_points(dim: usize) -> impl Strategy<Value = Vec<UncertainPoint>> {
        proptest::collection::vec(
            proptest::collection::vec((-100.0f64..100.0, 0.0f64..10.0), dim..=dim),
            1..50,
        )
        .prop_map(|rows| {
            rows.into_iter()
                .map(|row| {
                    let (vs, es): (Vec<f64>, Vec<f64>) = row.into_iter().unzip();
                    UncertainPoint::new(vs, es).unwrap()
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn merge_is_commutative(a in arb_points(2), b in arb_points(2)) {
            let mut ca = MicroCluster::new(2);
            for p in &a { ca.insert(p).unwrap(); }
            let mut cb = MicroCluster::new(2);
            for p in &b { cb.insert(p).unwrap(); }

            let mut ab = ca.clone();
            ab.merge(&cb).unwrap();
            let mut ba = cb.clone();
            ba.merge(&ca).unwrap();

            prop_assert_eq!(ab.n(), ba.n());
            for j in 0..2 {
                prop_assert!((ab.cf1()[j] - ba.cf1()[j]).abs() < 1e-6);
                prop_assert!((ab.cf2()[j] - ba.cf2()[j]).abs() < 1e-6);
                prop_assert!((ab.ef2()[j] - ba.ef2()[j]).abs() < 1e-6);
            }
        }

        #[test]
        fn variance_matches_two_pass(pts in arb_points(1)) {
            let mut c = MicroCluster::new(1);
            for p in &pts { c.insert(p).unwrap(); }
            let n = pts.len() as f64;
            let mean = pts.iter().map(|p| p.value(0)).sum::<f64>() / n;
            let var = pts.iter().map(|p| (p.value(0) - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((c.variance(0) - var).abs() < 1e-6);
        }

        #[test]
        fn centroid_within_value_range(pts in arb_points(1)) {
            let mut c = MicroCluster::new(1);
            for p in &pts { c.insert(p).unwrap(); }
            let min = pts.iter().map(|p| p.value(0)).fold(f64::INFINITY, f64::min);
            let max = pts.iter().map(|p| p.value(0)).fold(f64::NEG_INFINITY, f64::max);
            let cen = c.centroid().unwrap()[0];
            prop_assert!(cen >= min - 1e-9 && cen <= max + 1e-9);
        }
    }
}
