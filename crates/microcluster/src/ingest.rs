//! Quarantine and degradation policies for fault-tolerant ingest.
//!
//! The maintainer ([`crate::maintainer`]) assumes validated
//! [`UncertainPoint`]s; a real stream delivers [`RawRecord`]s that may
//! carry NaN/Inf cells, negative or wildly inflated ψ, timestamp
//! anomalies or the wrong arity. [`ResilientIngestor`] sits between the
//! two and renders a per-record verdict:
//!
//! * **Accept** — the record is clean; it is admitted as-is.
//! * **Repair** — corrupt cells are fixed in line from the running
//!   per-column statistics (mean imputation with the column σ recorded
//!   as the cell's ψ — the same a-priori error model as
//!   `udm_data::imputation`), and the repaired point is admitted.
//! * **Quarantine** — the record is repairable in principle but the
//!   column statistics are still too immature to impute from; it is
//!   parked in a bounded buffer and retried with exponential backoff as
//!   the stream matures.
//! * **Reject** — the record cannot be interpreted (arity beyond the
//!   stream's dimensionality, timestamp policy violation, quarantine
//!   full, or retries exhausted); it is counted and dropped.
//!
//! Every decision is deterministic — there is no randomness in the
//! ingestor — so a crash-recovered ingestor that replays the same tail
//! reproduces the same state bit for bit (see [`crate::checkpoint`]).

use crate::maintainer::{MaintainerConfig, MicroClusterMaintainer};
use serde::{Deserialize, Serialize};
use udm_core::{ClassLabel, Result, RunningStats, UdmError, UncertainPoint};
use udm_data::fault::RawRecord;
use udm_data::imputation::{impute_mean, IncompleteDataset, IncompleteRow};

/// Per-record ingest decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Clean record, admitted unchanged.
    Accept,
    /// Corrupt cells repaired in line, record admitted.
    Repair,
    /// Parked in the quarantine buffer for a later retry.
    Quarantine,
    /// Dropped permanently.
    Reject,
}

impl Verdict {
    /// Stable lowercase name (report keys, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Accept => "accept",
            Verdict::Repair => "repair",
            Verdict::Quarantine => "quarantine",
            Verdict::Reject => "reject",
        }
    }
}

/// Degradation policy: what the ingestor tolerates, repairs and refuses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestPolicy {
    /// A recorded ψ larger than `error_cap_sigmas · σ_j` (σ_j the running
    /// std of column `j`, once it is positive) is treated as corrupt and
    /// repaired to σ_j.
    pub error_cap_sigmas: f64,
    /// Maximum records parked in quarantine; when full, further
    /// quarantine candidates are rejected.
    pub quarantine_capacity: usize,
    /// Repair retries per quarantined record before it is rejected.
    pub max_retries: u32,
    /// Arrivals to wait before the first retry; doubles per attempt.
    pub retry_backoff: u64,
    /// Column observations required before statistics-based repair is
    /// trusted; below this, repairable records are quarantined instead.
    pub min_stats_for_repair: u64,
    /// Reject records whose timestamp equals the current watermark
    /// (duplicate arrivals). Off by default: merged shards legitimately
    /// share timestamps.
    pub reject_duplicate_timestamps: bool,
    /// Clamp timestamps that regress below the watermark up to the
    /// watermark (counted as a repair). When `false`, such records are
    /// rejected.
    pub clamp_regressing_timestamps: bool,
}

impl Default for IngestPolicy {
    fn default() -> Self {
        IngestPolicy {
            error_cap_sigmas: 6.0,
            quarantine_capacity: 256,
            max_retries: 3,
            retry_backoff: 32,
            min_stats_for_repair: 16,
            reject_duplicate_timestamps: false,
            clamp_regressing_timestamps: true,
        }
    }
}

impl IngestPolicy {
    fn validate(&self) -> Result<()> {
        if !(self.error_cap_sigmas.is_finite() && self.error_cap_sigmas > 0.0) {
            return Err(UdmError::InvalidValue {
                what: "error_cap_sigmas",
                value: self.error_cap_sigmas,
            });
        }
        if self.quarantine_capacity == 0 {
            return Err(UdmError::InvalidConfig(
                "quarantine_capacity must be at least 1".into(),
            ));
        }
        if self.retry_backoff == 0 {
            return Err(UdmError::InvalidConfig(
                "retry_backoff must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Monotone counters over every verdict the ingestor has rendered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestCounters {
    /// Records observed (everything offered to the ingestor).
    pub arrivals: u64,
    /// Records admitted unchanged.
    pub accepted: u64,
    /// Records admitted after in-line cell repair.
    pub repaired: u64,
    /// Individual cells repaired (a record may contribute several).
    pub repaired_cells: u64,
    /// Records parked in quarantine.
    pub quarantined: u64,
    /// Quarantined records later repaired and admitted.
    pub released: u64,
    /// Records dropped permanently.
    pub rejected: u64,
    /// Timestamps clamped up to the watermark.
    pub timestamp_repairs: u64,
    /// Largest quarantine-buffer depth ever reached (high-water mark).
    pub quarantine_high_water: u64,
    /// Quarantined records dropped because their retry budget ran out
    /// (a subset of `rejected`).
    pub retry_exhausted: u64,
}

impl IngestCounters {
    /// Records whose data reached the micro-cluster summary.
    pub fn admitted(&self) -> u64 {
        self.accepted + self.repaired + self.released
    }

    /// Accumulates another counter set into this one — the shard
    /// roll-up primitive. Monotone counters add; the quarantine
    /// high-water mark takes the max (depths in different shards never
    /// coexist in one buffer, so summing would overstate pressure).
    pub fn absorb(&mut self, other: &IngestCounters) {
        self.arrivals += other.arrivals;
        self.accepted += other.accepted;
        self.repaired += other.repaired;
        self.repaired_cells += other.repaired_cells;
        self.quarantined += other.quarantined;
        self.released += other.released;
        self.rejected += other.rejected;
        self.timestamp_repairs += other.timestamp_repairs;
        self.quarantine_high_water = self.quarantine_high_water.max(other.quarantine_high_water);
        self.retry_exhausted += other.retry_exhausted;
    }
}

impl std::fmt::Display for IngestCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} arrivals: {} accepted, {} repaired ({} cells), \
             {} quarantined ({} released), {} rejected ({} retry-exhausted), \
             {} timestamp repairs; quarantine high-water {}",
            self.arrivals,
            self.accepted,
            self.repaired,
            self.repaired_cells,
            self.quarantined,
            self.released,
            self.rejected,
            self.retry_exhausted,
            self.timestamp_repairs,
            self.quarantine_high_water
        )
    }
}

/// A record parked in the quarantine buffer.
///
/// Cells and errors are stored as `Option<f64>` with `None` marking the
/// corrupt entries — never the NaN/Inf originals, so the buffer survives
/// JSON checkpointing losslessly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedRecord {
    /// Stream position of the original record.
    pub seq: u64,
    /// Claimed arrival timestamp.
    pub timestamp: u64,
    /// Usable cell values (`None` = corrupt / missing).
    pub cells: Vec<Option<f64>>,
    /// Usable cell errors (`None` = corrupt; re-derived on repair).
    pub errors: Vec<Option<f64>>,
    /// Class label, if the record carried one.
    pub label: Option<ClassLabel>,
    /// Repair attempts so far.
    pub attempts: u32,
    /// Arrival count at which the next retry is due.
    pub retry_at: u64,
}

/// A record the ingestor admitted into the summary, tagged with its
/// original stream position so consumers (e.g. classifier training) can
/// correlate it with the clean stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmittedRecord {
    /// Stream position of the source record.
    pub seq: u64,
    /// The validated (possibly repaired) point that was admitted.
    pub point: UncertainPoint,
}

/// A quarantined record dropped because its retry budget ran out — the
/// terminal `Reject` surfaced through [`Observed::exhausted`] so callers
/// can account for every record instead of seeing a silent drop from the
/// bounded buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhaustedRecord {
    /// Stream position of the dropped record.
    pub seq: u64,
    /// Repair attempts made before the drop (`max_retries + 1`).
    pub attempts: u32,
}

/// Result of offering one record to the ingestor.
#[derive(Debug, Clone, PartialEq)]
pub struct Observed {
    /// Verdict rendered for the offered record.
    pub verdict: Verdict,
    /// Points admitted by this call: the offered record (if admitted)
    /// plus any quarantined records whose retry came due.
    pub admitted: Vec<AdmittedRecord>,
    /// Quarantined records terminally rejected by this call because
    /// their retry budget was exhausted.
    pub exhausted: Vec<ExhaustedRecord>,
}

/// Outcome of classifying one record's cells against the policy.
enum CellScan {
    Clean,
    /// Some cells corrupt; `cells`/`errors` hold the usable parts.
    Damaged {
        cells: Vec<Option<f64>>,
        errors: Vec<Option<f64>>,
    },
    /// More cells than the stream dimensionality: uninterpretable.
    Uninterpretable,
}

/// Fault-tolerant front end for [`MicroClusterMaintainer`].
///
/// # Example
///
/// ```
/// use udm_core::UncertainPoint;
/// use udm_data::fault::RawRecord;
/// use udm_microcluster::{IngestPolicy, MaintainerConfig, ResilientIngestor, Verdict};
///
/// let mut ing = ResilientIngestor::new(1, MaintainerConfig::new(2), IngestPolicy::default())
///     .unwrap();
/// let clean = UncertainPoint::new(vec![1.0], vec![0.1]).unwrap();
/// let obs = ing.observe(&RawRecord::from_point(0, &clean)).unwrap();
/// assert_eq!(obs.verdict, Verdict::Accept);
///
/// let mut bad = RawRecord::from_point(1, &clean);
/// bad.values[0] = f64::NAN;
/// let obs = ing.observe(&bad).unwrap();
/// assert_eq!(obs.verdict, Verdict::Quarantine); // column stats still immature
/// ```
#[derive(Debug, Clone)]
pub struct ResilientIngestor {
    maintainer: MicroClusterMaintainer,
    policy: IngestPolicy,
    col_stats: Vec<RunningStats>,
    quarantine: Vec<QuarantinedRecord>,
    counters: IngestCounters,
    watermark: u64,
    arrivals: u64,
}

impl ResilientIngestor {
    /// Creates an ingestor for `dim`-dimensional records.
    ///
    /// # Errors
    ///
    /// Invalid maintainer configuration or policy.
    pub fn new(dim: usize, config: MaintainerConfig, policy: IngestPolicy) -> Result<Self> {
        policy.validate()?;
        Ok(ResilientIngestor {
            maintainer: MicroClusterMaintainer::new(dim, config)?,
            policy,
            col_stats: vec![RunningStats::new(); dim],
            quarantine: Vec::new(),
            counters: IngestCounters::default(),
            watermark: 0,
            arrivals: 0,
        })
    }

    /// Reassembles an ingestor from previously captured state (the
    /// checkpoint-restore path; see [`crate::checkpoint`]).
    ///
    /// # Errors
    ///
    /// Invalid policy, or `col_stats` arity disagreeing with the
    /// maintainer's dimensionality.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        maintainer: MicroClusterMaintainer,
        policy: IngestPolicy,
        col_stats: Vec<RunningStats>,
        quarantine: Vec<QuarantinedRecord>,
        counters: IngestCounters,
        watermark: u64,
        arrivals: u64,
    ) -> Result<Self> {
        policy.validate()?;
        if col_stats.len() != maintainer.dim() {
            return Err(UdmError::DimensionMismatch {
                expected: maintainer.dim(),
                actual: col_stats.len(),
            });
        }
        Ok(ResilientIngestor {
            maintainer,
            policy,
            col_stats,
            quarantine,
            counters,
            watermark,
            arrivals,
        })
    }

    /// Dimensionality of the ingested stream.
    pub fn dim(&self) -> usize {
        self.maintainer.dim()
    }

    /// The maintained micro-cluster summary.
    pub fn maintainer(&self) -> &MicroClusterMaintainer {
        &self.maintainer
    }

    /// The degradation policy.
    pub fn policy(&self) -> &IngestPolicy {
        &self.policy
    }

    /// Per-column running statistics over admitted *observed* cells.
    pub fn col_stats(&self) -> &[RunningStats] {
        &self.col_stats
    }

    /// Records currently parked in quarantine.
    pub fn quarantine(&self) -> &[QuarantinedRecord] {
        &self.quarantine
    }

    /// The verdict counters.
    pub fn counters(&self) -> &IngestCounters {
        &self.counters
    }

    /// Highest timestamp admitted so far.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Records offered so far (the ingestor's logical clock; retry
    /// backoff is scheduled in these units).
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Consumes the ingestor, returning the maintained summary.
    pub fn into_maintainer(self) -> MicroClusterMaintainer {
        self.maintainer
    }

    /// Offers one record; renders a verdict and admits what it can
    /// (the record itself and/or quarantined records whose retry came
    /// due).
    ///
    /// # Errors
    ///
    /// Only internal invariant violations (e.g. a repaired point failing
    /// maintainer insertion) surface as errors; malformed *input* is
    /// handled by the policy, not reported as `Err`.
    pub fn observe(&mut self, rec: &RawRecord) -> Result<Observed> {
        self.arrivals += 1;
        self.counters.arrivals += 1;
        let mut admitted = Vec::new();
        let mut exhausted = Vec::new();
        self.release_due(&mut admitted, &mut exhausted)?;

        let verdict = match self.scan_cells(rec) {
            CellScan::Uninterpretable => {
                self.counters.rejected += 1;
                Verdict::Reject
            }
            CellScan::Clean => match self.admissible_timestamp(rec.timestamp) {
                None => {
                    self.counters.rejected += 1;
                    Verdict::Reject
                }
                Some((ts, ts_repaired)) => {
                    let point =
                        self.build_point(rec.values.clone(), rec.errors.clone(), rec.label, ts)?;
                    self.admit(rec.seq, point, true, &mut admitted)?;
                    if ts_repaired {
                        self.counters.timestamp_repairs += 1;
                        self.counters.repaired += 1;
                        Verdict::Repair
                    } else {
                        self.counters.accepted += 1;
                        Verdict::Accept
                    }
                }
            },
            CellScan::Damaged { cells, errors } => match self.admissible_timestamp(rec.timestamp) {
                None => {
                    self.counters.rejected += 1;
                    Verdict::Reject
                }
                Some((ts, ts_repaired)) => {
                    if self.stats_mature_for(&cells) {
                        let (point, fixed) = self.repair_cells(&cells, &errors, rec.label, ts)?;
                        self.admit(rec.seq, point, true, &mut admitted)?;
                        self.counters.repaired += 1;
                        self.counters.repaired_cells += fixed;
                        if ts_repaired {
                            self.counters.timestamp_repairs += 1;
                        }
                        Verdict::Repair
                    } else if self.quarantine.len() < self.policy.quarantine_capacity {
                        self.quarantine.push(QuarantinedRecord {
                            seq: rec.seq,
                            timestamp: ts,
                            cells,
                            errors,
                            label: rec.label,
                            attempts: 0,
                            retry_at: self.arrivals + self.policy.retry_backoff,
                        });
                        self.counters.quarantined += 1;
                        let depth = self.quarantine.len() as u64;
                        if depth > self.counters.quarantine_high_water {
                            self.counters.quarantine_high_water = depth;
                        }
                        if ts_repaired {
                            self.counters.timestamp_repairs += 1;
                        }
                        Verdict::Quarantine
                    } else {
                        self.counters.rejected += 1;
                        Verdict::Reject
                    }
                }
            },
        };
        if udm_observe::enabled() {
            match verdict {
                Verdict::Accept => udm_observe::counter_inc!("udm_ingest_accepted_total"),
                Verdict::Repair => udm_observe::counter_inc!("udm_ingest_repaired_total"),
                Verdict::Quarantine => udm_observe::counter_inc!("udm_ingest_quarantined_total"),
                Verdict::Reject => udm_observe::counter_inc!("udm_ingest_rejected_total"),
            }
            udm_observe::counter_inc!("udm_ingest_arrivals_total");
            udm_observe::gauge_set!(
                "udm_ingest_quarantine_len",
                udm_core::num::f64_from_usize(self.quarantine.len())
            );
        }
        Ok(Observed {
            verdict,
            admitted,
            exhausted,
        })
    }

    /// Final flush: repairs and admits every quarantined record it can.
    ///
    /// Records whose columns matured since they were parked are repaired
    /// from the running statistics; the stragglers are batch-imputed with
    /// [`udm_data::imputation::impute_mean`] over the quarantine buffer
    /// itself. Records that still cannot be repaired (a column with no
    /// observed value anywhere) are rejected.
    ///
    /// # Errors
    ///
    /// Internal invariant violations only, as [`Self::observe`].
    pub fn drain_quarantine(&mut self) -> Result<Vec<AdmittedRecord>> {
        let entries = std::mem::take(&mut self.quarantine);
        let mut admitted = Vec::new();
        let mut stragglers = Vec::new();
        for q in entries {
            // The final flush has no "later": maturity is relaxed to
            // "any observations at all" on the columns that need repair.
            if self.stats_available_for(&q.cells) {
                let (point, fixed) =
                    self.repair_cells(&q.cells, &q.errors, q.label, q.timestamp)?;
                self.admit_late(&mut admitted, q.seq, point)?;
                self.counters.repaired_cells += fixed;
            } else {
                stragglers.push(q);
            }
        }
        if stragglers.is_empty() {
            return Ok(admitted);
        }
        let mut inc = IncompleteDataset::new(self.dim());
        for q in &stragglers {
            inc.push(IncompleteRow {
                values: q.cells.clone(),
                label: q.label,
            })?;
        }
        match impute_mean(&inc) {
            Ok(imputed) => {
                let mut fixed = 0u64;
                for (q, p) in stragglers.iter().zip(imputed.iter()) {
                    // Keep the record's own ψ where it was usable; the
                    // imputer's σ fills the corrupt cells.
                    let mut errors = Vec::with_capacity(self.dim());
                    for j in 0..self.dim() {
                        match (
                            q.cells.get(j).copied().flatten(),
                            q.errors.get(j).copied().flatten(),
                        ) {
                            (Some(_), Some(psi)) => errors.push(psi),
                            _ => {
                                errors.push(p.error(j));
                                fixed += 1;
                            }
                        }
                    }
                    let point =
                        self.build_point(p.values().to_vec(), errors, q.label, q.timestamp)?;
                    self.admit_late(&mut admitted, q.seq, point)?;
                }
                self.counters.repaired_cells += fixed;
            }
            Err(_) => {
                // A column with no observed value anywhere: nothing to
                // impute from. Drop the stragglers.
                self.counters.rejected += stragglers.len() as u64;
            }
        }
        Ok(admitted)
    }

    /// Retries quarantined records whose backoff expired. Records whose
    /// retry budget runs out are reported through `exhausted` as
    /// terminal rejects rather than silently vanishing from the buffer.
    fn release_due(
        &mut self,
        admitted: &mut Vec<AdmittedRecord>,
        exhausted: &mut Vec<ExhaustedRecord>,
    ) -> Result<()> {
        if self.quarantine.is_empty() {
            return Ok(());
        }
        let due: Vec<usize> = self
            .quarantine
            .iter()
            .enumerate()
            .filter(|(_, q)| q.retry_at <= self.arrivals)
            .map(|(i, _)| i)
            .collect();
        if due.is_empty() {
            return Ok(());
        }
        let mut remove = Vec::new();
        for i in due {
            let mature = self.stats_mature_for(&self.quarantine[i].cells);
            if mature {
                let q = self.quarantine[i].clone();
                let (point, fixed) =
                    self.repair_cells(&q.cells, &q.errors, q.label, q.timestamp)?;
                self.admit_late(admitted, q.seq, point)?;
                self.counters.repaired_cells += fixed;
                remove.push(i);
            } else {
                let backoff = self.policy.retry_backoff;
                let q = &mut self.quarantine[i];
                q.attempts += 1;
                if q.attempts > self.policy.max_retries {
                    self.counters.rejected += 1;
                    self.counters.retry_exhausted += 1;
                    exhausted.push(ExhaustedRecord {
                        seq: q.seq,
                        attempts: q.attempts,
                    });
                    udm_observe::counter_inc!("udm_ingest_retry_exhausted_total");
                    remove.push(i);
                } else {
                    // Exponential backoff, saturating so huge attempt
                    // counts cannot overflow the schedule.
                    let factor = 1u64.checked_shl(q.attempts).unwrap_or(u64::MAX);
                    q.retry_at = self.arrivals.saturating_add(backoff.saturating_mul(factor));
                }
            }
        }
        for i in remove.into_iter().rev() {
            self.quarantine.remove(i);
        }
        Ok(())
    }

    /// Classifies a record's cells against the policy.
    fn scan_cells(&self, rec: &RawRecord) -> CellScan {
        let dim = self.dim();
        if rec.values.len() > dim || rec.errors.len() > rec.values.len() {
            return CellScan::Uninterpretable;
        }
        let mut cells = Vec::with_capacity(dim);
        let mut errors = Vec::with_capacity(dim);
        let mut damaged = rec.values.len() < dim || rec.errors.len() < rec.values.len();
        for j in 0..dim {
            let v = rec.values.get(j).copied().filter(|v| v.is_finite());
            let psi = rec
                .errors
                .get(j)
                .copied()
                .filter(|e| e.is_finite() && *e >= 0.0)
                .filter(|e| !self.psi_inflated(j, *e));
            if v.is_none() || psi.is_none() {
                damaged = true;
            }
            cells.push(v);
            errors.push(psi);
        }
        if damaged {
            CellScan::Damaged { cells, errors }
        } else {
            CellScan::Clean
        }
    }

    /// Is this recorded ψ implausibly large for column `j`?
    fn psi_inflated(&self, j: usize, psi: f64) -> bool {
        let st = &self.col_stats[j];
        if st.count() < self.policy.min_stats_for_repair {
            return false; // too early to judge
        }
        let sigma = st.std_population();
        sigma > 0.0 && psi > self.policy.error_cap_sigmas * sigma
    }

    /// Timestamp admission under the policy: returns the (possibly
    /// clamped) timestamp and whether it was repaired, or `None` to
    /// reject the record.
    fn admissible_timestamp(&self, ts: u64) -> Option<(u64, bool)> {
        if self.counters.admitted() == 0 {
            // Nothing admitted yet: the initial watermark of 0 is a
            // sentinel, not a real arrival to deduplicate against.
            return Some((ts, false));
        }
        if ts < self.watermark {
            if self.policy.clamp_regressing_timestamps {
                Some((self.watermark, true))
            } else {
                None
            }
        } else if ts == self.watermark && self.policy.reject_duplicate_timestamps {
            None
        } else {
            Some((ts, false))
        }
    }

    /// Are the columns of every corrupt cell mature enough to repair?
    fn stats_mature_for(&self, cells: &[Option<f64>]) -> bool {
        cells.iter().enumerate().all(|(j, c)| {
            c.is_some() || self.col_stats[j].count() >= self.policy.min_stats_for_repair
        })
    }

    /// Weaker form for the final drain: any observations on the columns
    /// that need repair.
    fn stats_available_for(&self, cells: &[Option<f64>]) -> bool {
        cells
            .iter()
            .enumerate()
            .all(|(j, c)| c.is_some() || self.col_stats[j].count() > 0)
    }

    /// Repairs a damaged record from the running column statistics:
    /// missing values become the column mean with σ as ψ; usable values
    /// with corrupt ψ get σ as ψ. Returns the point and the number of
    /// cells repaired.
    fn repair_cells(
        &self,
        cells: &[Option<f64>],
        errors: &[Option<f64>],
        label: Option<ClassLabel>,
        timestamp: u64,
    ) -> Result<(UncertainPoint, u64)> {
        let mut values = Vec::with_capacity(self.dim());
        let mut psis = Vec::with_capacity(self.dim());
        let mut fixed = 0u64;
        for j in 0..self.dim() {
            let st = &self.col_stats[j];
            match (
                cells.get(j).copied().flatten(),
                errors.get(j).copied().flatten(),
            ) {
                (Some(v), Some(psi)) => {
                    values.push(v);
                    psis.push(psi);
                }
                (Some(v), None) => {
                    values.push(v);
                    psis.push(st.std_population());
                    fixed += 1;
                }
                (None, _) => {
                    values.push(st.mean());
                    psis.push(st.std_population());
                    fixed += 1;
                }
            }
        }
        let point = self.build_point(values, psis, label, timestamp)?;
        Ok((point, fixed))
    }

    /// Builds a validated point (the values/errors are finite here by
    /// construction; validation is kept as a typed backstop).
    fn build_point(
        &self,
        values: Vec<f64>,
        errors: Vec<f64>,
        label: Option<ClassLabel>,
        timestamp: u64,
    ) -> Result<UncertainPoint> {
        let mut p = UncertainPoint::new(values, errors)?.with_timestamp(timestamp);
        if let Some(l) = label {
            p = p.with_label(l);
        }
        Ok(p)
    }

    /// Admits a point: inserts into the maintainer, advances the
    /// watermark, and (for directly observed records) feeds the clean
    /// cell values into the column statistics.
    fn admit(
        &mut self,
        seq: u64,
        point: UncertainPoint,
        update_stats: bool,
        admitted: &mut Vec<AdmittedRecord>,
    ) -> Result<()> {
        self.maintainer.insert(&point)?;
        if point.timestamp() > self.watermark {
            self.watermark = point.timestamp();
        }
        if update_stats {
            for (j, st) in self.col_stats.iter_mut().enumerate() {
                st.push(point.value(j));
            }
        }
        admitted.push(AdmittedRecord { seq, point });
        Ok(())
    }

    /// Admits a repaired quarantine release. Its timestamp may predate
    /// the watermark (the record arrived long ago); it is clamped so the
    /// summary's `last_timestamp` stays monotone. Imputed cells are kept
    /// out of the column statistics to avoid feeding estimates back into
    /// themselves.
    fn admit_late(
        &mut self,
        admitted: &mut Vec<AdmittedRecord>,
        seq: u64,
        point: UncertainPoint,
    ) -> Result<()> {
        self.counters.released += 1;
        udm_observe::counter_inc!("udm_ingest_released_total");
        self.admit(seq, point, false, admitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_rec(seq: u64, v: f64) -> RawRecord {
        RawRecord {
            seq,
            timestamp: seq,
            values: vec![v, -v],
            errors: vec![0.1, 0.2],
            label: Some(ClassLabel(0)),
        }
    }

    fn ingestor(policy: IngestPolicy) -> ResilientIngestor {
        ResilientIngestor::new(2, MaintainerConfig::new(3), policy).unwrap()
    }

    fn warm(ing: &mut ResilientIngestor, n: u64) {
        for i in 0..n {
            let obs = ing.observe(&clean_rec(i, (i % 10) as f64)).unwrap();
            assert_eq!(obs.verdict, Verdict::Accept);
        }
    }

    #[test]
    fn clean_records_are_accepted() {
        let mut ing = ingestor(IngestPolicy::default());
        warm(&mut ing, 50);
        assert_eq!(ing.counters().accepted, 50);
        assert_eq!(ing.counters().admitted(), 50);
        assert_eq!(ing.maintainer().points_seen(), 50);
        assert_eq!(ing.watermark(), 49);
    }

    #[test]
    fn nan_cell_is_repaired_once_stats_mature() {
        let mut ing = ingestor(IngestPolicy::default());
        warm(&mut ing, 30);
        let mut bad = clean_rec(30, 5.0);
        bad.values[0] = f64::NAN;
        let obs = ing.observe(&bad).unwrap();
        assert_eq!(obs.verdict, Verdict::Repair);
        assert_eq!(obs.admitted.len(), 1);
        let p = &obs.admitted[0].point;
        assert!(p.value(0).is_finite());
        assert!(p.error(0) > 0.0); // imputation error recorded as ψ
        assert_eq!(p.value(1), -5.0); // untouched cell survives
        assert_eq!(ing.counters().repaired, 1);
        assert_eq!(ing.counters().repaired_cells, 1);
    }

    #[test]
    fn negative_and_inflated_psi_are_repaired() {
        let mut ing = ingestor(IngestPolicy::default());
        warm(&mut ing, 30);
        let mut bad = clean_rec(30, 5.0);
        bad.errors[0] = -3.0;
        assert_eq!(ing.observe(&bad).unwrap().verdict, Verdict::Repair);
        let mut bad = clean_rec(31, 5.0);
        bad.errors[1] = 1e9;
        let obs = ing.observe(&bad).unwrap();
        assert_eq!(obs.verdict, Verdict::Repair);
        assert!(obs.admitted[0].point.error(1) < 1e3);
    }

    #[test]
    fn early_damage_is_quarantined_then_released() {
        let policy = IngestPolicy {
            min_stats_for_repair: 10,
            retry_backoff: 5,
            ..IngestPolicy::default()
        };
        let mut ing = ingestor(policy);
        let mut bad = clean_rec(0, 1.0);
        bad.values[0] = f64::INFINITY;
        let obs = ing.observe(&bad).unwrap();
        assert_eq!(obs.verdict, Verdict::Quarantine);
        assert_eq!(ing.quarantine().len(), 1);
        // Feed clean records until the retry comes due with mature stats.
        let mut released = 0;
        for i in 1..40 {
            let obs = ing.observe(&clean_rec(i, (i % 10) as f64)).unwrap();
            released += obs.admitted.iter().filter(|a| a.seq == 0).count();
        }
        assert_eq!(released, 1);
        assert!(ing.quarantine().is_empty());
        assert_eq!(ing.counters().released, 1);
    }

    #[test]
    fn quarantine_is_bounded() {
        let policy = IngestPolicy {
            quarantine_capacity: 2,
            min_stats_for_repair: 1000, // never matures in this test
            ..IngestPolicy::default()
        };
        let mut ing = ingestor(policy);
        for i in 0..5 {
            let mut bad = clean_rec(i, 1.0);
            bad.values[0] = f64::NAN;
            ing.observe(&bad).unwrap();
        }
        assert_eq!(ing.quarantine().len(), 2);
        assert_eq!(ing.counters().quarantined, 2);
        assert!(ing.counters().rejected >= 3);
    }

    #[test]
    fn retries_are_bounded_and_backed_off() {
        let policy = IngestPolicy {
            min_stats_for_repair: 1_000_000, // unrepairable
            retry_backoff: 2,
            max_retries: 2,
            ..IngestPolicy::default()
        };
        let mut ing = ingestor(policy);
        let mut bad = clean_rec(0, 1.0);
        bad.values[0] = f64::NAN;
        ing.observe(&bad).unwrap();
        for i in 1..100 {
            ing.observe(&clean_rec(i, 1.0)).unwrap();
        }
        // Exhausted its retries and was rejected, not retried forever.
        assert!(ing.quarantine().is_empty());
        assert_eq!(ing.counters().rejected, 1);
    }

    #[test]
    fn retry_exhaustion_surfaces_terminal_reject() {
        let policy = IngestPolicy {
            min_stats_for_repair: 1_000_000, // unrepairable
            retry_backoff: 2,
            max_retries: 2,
            ..IngestPolicy::default()
        };
        let mut ing = ingestor(policy);
        let mut bad = clean_rec(0, 1.0);
        bad.values[0] = f64::NAN;
        assert_eq!(ing.observe(&bad).unwrap().verdict, Verdict::Quarantine);
        let mut drops = Vec::new();
        for i in 1..100 {
            drops.extend(ing.observe(&clean_rec(i, 1.0)).unwrap().exhausted);
        }
        // Exactly one terminal reject, tagged with the original seq and
        // the full attempt count — not a silent drop from the buffer.
        assert_eq!(
            drops,
            vec![ExhaustedRecord {
                seq: 0,
                attempts: 3, // max_retries + 1
            }]
        );
        assert_eq!(ing.counters().retry_exhausted, 1);
        assert_eq!(ing.counters().rejected, 1);
    }

    #[test]
    fn counters_absorb_adds_monotone_and_maxes_high_water() {
        let mut a = IngestCounters {
            arrivals: 10,
            accepted: 8,
            quarantine_high_water: 3,
            ..IngestCounters::default()
        };
        let b = IngestCounters {
            arrivals: 5,
            rejected: 2,
            retry_exhausted: 1,
            quarantine_high_water: 2,
            ..IngestCounters::default()
        };
        a.absorb(&b);
        assert_eq!(a.arrivals, 15);
        assert_eq!(a.accepted, 8);
        assert_eq!(a.rejected, 2);
        assert_eq!(a.retry_exhausted, 1);
        assert_eq!(a.quarantine_high_water, 3);
    }

    #[test]
    fn truncated_records_are_repairable() {
        let mut ing = ingestor(IngestPolicy::default());
        warm(&mut ing, 30);
        let bad = RawRecord {
            seq: 30,
            timestamp: 30,
            values: vec![2.0],
            errors: vec![0.1],
            label: None,
        };
        let obs = ing.observe(&bad).unwrap();
        assert_eq!(obs.verdict, Verdict::Repair);
        assert_eq!(obs.admitted[0].point.dim(), 2);
    }

    #[test]
    fn overlong_records_are_rejected() {
        let mut ing = ingestor(IngestPolicy::default());
        let bad = RawRecord {
            seq: 0,
            timestamp: 0,
            values: vec![1.0, 2.0, 3.0],
            errors: vec![0.0, 0.0, 0.0],
            label: None,
        };
        assert_eq!(ing.observe(&bad).unwrap().verdict, Verdict::Reject);
        assert_eq!(ing.counters().rejected, 1);
    }

    #[test]
    fn regressing_timestamps_follow_policy() {
        let mut ing = ingestor(IngestPolicy::default());
        warm(&mut ing, 20);
        let mut rec = clean_rec(20, 3.0);
        rec.timestamp = 2; // far behind the watermark of 19
        let obs = ing.observe(&rec).unwrap();
        assert_eq!(obs.verdict, Verdict::Repair);
        assert_eq!(obs.admitted[0].point.timestamp(), 19);
        assert_eq!(ing.counters().timestamp_repairs, 1);

        let strict = IngestPolicy {
            clamp_regressing_timestamps: false,
            ..IngestPolicy::default()
        };
        let mut ing = ingestor(strict);
        warm(&mut ing, 20);
        let mut rec = clean_rec(20, 3.0);
        rec.timestamp = 2;
        assert_eq!(ing.observe(&rec).unwrap().verdict, Verdict::Reject);
    }

    #[test]
    fn duplicate_timestamps_follow_policy() {
        let mut ing = ingestor(IngestPolicy::default());
        warm(&mut ing, 5);
        let mut rec = clean_rec(5, 1.0);
        rec.timestamp = ing.watermark(); // duplicate of the last arrival
        assert_eq!(ing.observe(&rec).unwrap().verdict, Verdict::Accept);

        let strict = IngestPolicy {
            reject_duplicate_timestamps: true,
            ..IngestPolicy::default()
        };
        let mut ing = ingestor(strict);
        warm(&mut ing, 5);
        let mut rec = clean_rec(5, 1.0);
        rec.timestamp = ing.watermark();
        assert_eq!(ing.observe(&rec).unwrap().verdict, Verdict::Reject);
    }

    #[test]
    fn drain_flushes_quarantine_with_batch_imputation() {
        let policy = IngestPolicy {
            min_stats_for_repair: 1_000_000, // inline repair never fires
            max_retries: 1_000,              // keep records parked
            retry_backoff: 1_000_000,
            ..IngestPolicy::default()
        };
        let mut ing = ingestor(policy);
        for i in 0..10 {
            let mut bad = clean_rec(i, i as f64);
            // Alternate the corrupt dimension so each column keeps some
            // observed cells for the batch imputer to learn from.
            bad.values[(i % 2) as usize] = f64::NAN;
            ing.observe(&bad).unwrap();
        }
        assert_eq!(ing.quarantine().len(), 10);
        let drained = ing.drain_quarantine().unwrap();
        assert_eq!(drained.len(), 10);
        assert!(ing.quarantine().is_empty());
        assert_eq!(ing.counters().released, 10);
        // Imputed cells carry the imputation ψ; intact cells keep their
        // recorded ψ (0.1 on dim 0, 0.2 on dim 1).
        for a in &drained {
            let corrupt = (a.seq % 2) as usize;
            let intact = 1 - corrupt;
            assert!(a.point.error(corrupt) > 0.0);
            let expected = if intact == 0 { 0.1 } else { 0.2 };
            assert_eq!(a.point.error(intact), expected);
        }
    }

    #[test]
    fn drain_rejects_the_unimputable() {
        let policy = IngestPolicy {
            min_stats_for_repair: 1_000_000,
            retry_backoff: 1_000_000,
            ..IngestPolicy::default()
        };
        let mut ing = ingestor(policy);
        // Every quarantined record is missing *both* dims: nothing
        // observed anywhere, so batch imputation has no basis.
        for i in 0..3 {
            let bad = RawRecord {
                seq: i,
                timestamp: i,
                values: vec![f64::NAN, f64::NAN],
                errors: vec![0.1, 0.1],
                label: None,
            };
            ing.observe(&bad).unwrap();
        }
        let drained = ing.drain_quarantine().unwrap();
        assert!(drained.is_empty());
        assert_eq!(ing.counters().rejected, 3);
    }

    #[test]
    fn counters_display_is_informative() {
        let mut ing = ingestor(IngestPolicy::default());
        warm(&mut ing, 3);
        let text = ing.counters().to_string();
        assert!(text.contains("3 arrivals"), "{text}");
        assert!(text.contains("3 accepted"), "{text}");
    }

    #[test]
    fn invalid_policies_rejected() {
        let bad = IngestPolicy {
            error_cap_sigmas: f64::NAN,
            ..IngestPolicy::default()
        };
        assert!(ResilientIngestor::new(1, MaintainerConfig::new(2), bad).is_err());
        let bad = IngestPolicy {
            quarantine_capacity: 0,
            ..IngestPolicy::default()
        };
        assert!(ResilientIngestor::new(1, MaintainerConfig::new(2), bad).is_err());
        let bad = IngestPolicy {
            retry_backoff: 0,
            ..IngestPolicy::default()
        };
        assert!(ResilientIngestor::new(1, MaintainerConfig::new(2), bad).is_err());
    }

    #[test]
    fn from_parts_roundtrip() {
        let mut ing = ingestor(IngestPolicy::default());
        warm(&mut ing, 25);
        let back = ResilientIngestor::from_parts(
            ing.maintainer().clone(),
            ing.policy().clone(),
            ing.col_stats().to_vec(),
            ing.quarantine().to_vec(),
            *ing.counters(),
            ing.watermark(),
            ing.arrivals(),
        )
        .unwrap();
        assert_eq!(back.counters(), ing.counters());
        assert_eq!(back.maintainer().clusters(), ing.maintainer().clusters());
        // Dimension mismatch is rejected.
        assert!(ResilientIngestor::from_parts(
            ing.maintainer().clone(),
            ing.policy().clone(),
            vec![RunningStats::new(); 5],
            vec![],
            IngestCounters::default(),
            0,
            0,
        )
        .is_err());
    }
}
