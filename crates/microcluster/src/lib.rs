//! # udm-microcluster
//!
//! Error-based micro-clustering (§2.1 of Aggarwal, ICDE 2007): the
//! compression substrate that makes error-adjusted density estimation
//! scale to very large data sets and streams.
//!
//! The paper condenses a data set into `q` micro-clusters, each summarized
//! by the additive sufficient statistics of **Definition 1**:
//!
//! ```text
//! CFT(C) = ( CF2x(C), EF2x(C), CF1x(C), n(C) )
//! ```
//!
//! where, per dimension `p`: `CF2x_p = Σ (x_p)²`, `EF2x_p = Σ ψ_p(X)²`,
//! `CF1x_p = Σ x_p`, and `n` is the member count. Incoming points are
//! assigned to the closest of the `q` centroids under the
//! **error-adjusted distance** of Eq. 5, and each micro-cluster is then
//! treated as a single *pseudo-point* whose error combines the cluster's
//! internal variance (bias) with its members' errors (**Lemma 1**):
//!
//! ```text
//! Δ_j(C)² = CF2x_j/r − (CF1x_j/r)² + EF2_j/r
//! ```
//!
//! The weighted mixture of error-based kernels over pseudo-points (Eqs.
//! 9–10) approximates the exact point-based density of `udm-kde` at a cost
//! proportional to `q` instead of `N`.
//!
//! Modules:
//!
//! * [`feature`] — the `CFT` statistics ([`MicroCluster`]), additive and
//!   mergeable,
//! * [`distance`] — Eq. 5 and baselines/ablations,
//! * [`maintainer`] — single-pass streaming maintenance with `q` fixed
//!   clusters (never created after warm-up, never discarded),
//! * [`pseudo`] — Lemma 1 pseudo-points,
//! * [`density`] — the micro-cluster density estimator (Eqs. 9–10),
//! * [`backend`] — the `Exact` / `CoresetKde` / `HbeKde` implementations
//!   of `udm_kde::backend::DensityBackend`, plus [`build_backend`],
//! * [`snapshot`] — JSON persistence of maintainer state,
//! * [`ingest`] — fault-tolerant ingest: per-record Accept / Repair /
//!   Quarantine / Reject verdicts under a configurable degradation
//!   policy,
//! * [`checkpoint`] — versioned, checksummed checkpoints with atomic
//!   writes and replay-aware crash recovery,
//! * [`diagnostics`] — summary-health reporting (occupancy balance,
//!   radii, error mass) and ingest-policy counters,
//! * [`pyramid`] — the CluStream pyramidal time frame: geometrically
//!   spaced snapshots with additive subtraction for horizon queries,
//! * [`shard`] — sharded fault-domain ingest: mergeable model partials
//!   ([`MicroClusterModel`]), a shard supervisor with retry/backoff and
//!   warm restarts, and degraded-mode serving with a coverage fraction.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
pub mod checkpoint;
pub mod density;
pub mod diagnostics;
pub mod distance;
pub mod feature;
pub mod ingest;
pub mod maintainer;
pub mod pseudo;
pub mod pyramid;
pub mod shard;
pub mod snapshot;

pub use backend::{build_backend, model_fingerprint, CoresetKde, HbeKde};
pub use checkpoint::{
    load_checkpoint, load_checkpoint_with_fallback, save_checkpoint, CheckpointDriver,
    CheckpointPayload, SCHEMA_VERSION,
};
pub use density::MicroClusterKde;
pub use diagnostics::{diagnose, diagnose_ingest, IngestDiagnostics, SummaryDiagnostics};
pub use distance::AssignmentDistance;
pub use feature::MicroCluster;
pub use ingest::{
    AdmittedRecord, ExhaustedRecord, IngestCounters, IngestPolicy, Observed, QuarantinedRecord,
    ResilientIngestor, Verdict,
};
pub use maintainer::{ConcurrentMaintainer, MaintainerConfig, MicroClusterMaintainer};
pub use pseudo::PseudoPoint;
pub use pyramid::{subtract_clusters, subtract_snapshots, PyramidalStore, TimedSnapshot};
pub use shard::{
    AggregateCft, KillPlan, MicroClusterModel, ShardPlan, ShardRunReport, ShardState,
    ShardSupervisor,
};
