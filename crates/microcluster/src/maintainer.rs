//! Single-pass streaming maintenance of error-based micro-clusters.
//!
//! The paper's variation of CluStream (§2.1): statistics are maintained
//! for `q` centroids; every incoming point is assigned to its closest
//! centroid under the error-adjusted distance (Eq. 5) and is **never**
//! allowed to create a new micro-cluster after warm-up; clusters are never
//! discarded, so every point is reflected in the statistics.
//!
//! Warm-up follows the paper's observation about Figure 11: "at the
//! earlier stages of the micro-clustering algorithm, only a small number
//! of micro-clusters were created, but this gradually increased to the
//! maximum number over time" — the first `q` *distinct* arrivals each seed
//! a cluster (for a randomly ordered stream this is a uniformly random
//! choice of seeds, matching "these q centroids are chosen randomly").

use crate::distance::AssignmentDistance;
use crate::feature::MicroCluster;
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use udm_core::num::f64_from_count;
use udm_core::{Result, UdmError, UncertainDataset, UncertainPoint};

/// Configuration of the maintainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintainerConfig {
    /// Number of micro-clusters `q`. The paper sizes this by available
    /// main memory; the experiments sweep 20–140.
    pub max_clusters: usize,
    /// Distance used for nearest-centroid assignment.
    pub distance: AssignmentDistance,
}

impl MaintainerConfig {
    /// Paper-default configuration with the given `q`.
    pub fn new(max_clusters: usize) -> Self {
        MaintainerConfig {
            max_clusters,
            distance: AssignmentDistance::ErrorAdjusted,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.max_clusters == 0 {
            return Err(UdmError::InvalidConfig(
                "max_clusters must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Streaming micro-cluster maintainer.
///
/// Centroids are cached and updated incrementally on every insertion so
/// assignment is a scan of `q` cached vectors — `O(q·d)` per point, which
/// is the linear-in-`q` cost the paper measures in Figure 8.
///
/// # Example
///
/// ```
/// use udm_core::UncertainPoint;
/// use udm_microcluster::{MaintainerConfig, MicroClusterMaintainer};
///
/// let mut m = MicroClusterMaintainer::new(1, MaintainerConfig::new(4)).unwrap();
/// for i in 0..100 {
///     let p = UncertainPoint::new(vec![(i % 8) as f64], vec![0.2]).unwrap();
///     m.insert(&p).unwrap();
/// }
/// assert_eq!(m.num_clusters(), 4);
/// assert_eq!(m.points_seen(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct MicroClusterMaintainer {
    config: MaintainerConfig,
    dim: usize,
    clusters: Vec<MicroCluster>,
    centroids: Vec<Vec<f64>>,
    points_seen: u64,
}

impl MicroClusterMaintainer {
    /// Creates an empty maintainer for `dim`-dimensional points.
    ///
    /// # Errors
    ///
    /// [`UdmError::InvalidConfig`] for `max_clusters == 0`.
    pub fn new(dim: usize, config: MaintainerConfig) -> Result<Self> {
        config.validate()?;
        Ok(MicroClusterMaintainer {
            config,
            dim,
            clusters: Vec::with_capacity(config.max_clusters),
            centroids: Vec::with_capacity(config.max_clusters),
            points_seen: 0,
        })
    }

    /// Builds a maintainer by streaming an entire dataset through it once.
    pub fn from_dataset(dataset: &UncertainDataset, config: MaintainerConfig) -> Result<Self> {
        let mut m = Self::new(dataset.dim(), config)?;
        for p in dataset.iter() {
            m.insert(p)?;
        }
        Ok(m)
    }

    /// Builds a maintainer with the post-warm-up assignment pass
    /// data-parallel over batches of `batch` points.
    ///
    /// Seeding is unchanged (the first `q` arrivals each found a
    /// cluster). Each subsequent batch computes every member's nearest
    /// centroid in parallel against the centroids *frozen at the batch
    /// boundary*, then folds the statistics in dataset order — so the
    /// result is deterministic and independent of the thread count. With
    /// `batch == 1` the frozen centroids are always current and the
    /// result is identical to [`Self::from_dataset`]; larger batches
    /// trade assignment freshness (centroids drift only between batches)
    /// for `q·d`-scan parallelism, exactly the mini-batch compromise
    /// usual for CluStream-style summaries.
    ///
    /// # Errors
    ///
    /// As [`Self::from_dataset`]; additionally
    /// [`UdmError::InvalidConfig`] for `batch == 0`.
    pub fn from_dataset_batched(
        dataset: &UncertainDataset,
        config: MaintainerConfig,
        batch: usize,
    ) -> Result<Self> {
        if batch == 0 {
            return Err(UdmError::InvalidConfig(
                "batch size must be at least 1".into(),
            ));
        }
        let mut m = Self::new(dataset.dim(), config)?;
        let points = dataset.points();
        let warm = config.max_clusters.min(points.len());
        for p in &points[..warm] {
            m.insert(p)?;
        }
        for chunk in points[warm..].chunks(batch) {
            let assigned: Result<Vec<usize>> = chunk
                .par_iter()
                .map(|p| {
                    if p.dim() != m.dim {
                        return Err(UdmError::DimensionMismatch {
                            expected: m.dim,
                            actual: p.dim(),
                        });
                    }
                    m.nearest(p).ok_or(UdmError::EmptyDataset)
                })
                .collect();
            for (p, idx) in chunk.iter().zip(assigned?) {
                m.absorb_at(idx, p)?;
            }
        }
        Ok(m)
    }

    /// Nearest-centroid index of every point of `dataset`, computed in
    /// parallel against the current (frozen) centroids. This is the
    /// read-only assignment pass — the maintainer is not modified, so
    /// the result is a pure, thread-count-independent function of the
    /// current summary.
    ///
    /// # Errors
    ///
    /// [`UdmError::EmptyDataset`] when no clusters exist yet;
    /// [`UdmError::DimensionMismatch`] on ragged points.
    pub fn assignments(&self, dataset: &UncertainDataset) -> Result<Vec<usize>> {
        if self.clusters.is_empty() {
            return Err(UdmError::EmptyDataset);
        }
        dataset
            .points()
            .par_iter()
            .map(|p| {
                if p.dim() != self.dim {
                    return Err(UdmError::DimensionMismatch {
                        expected: self.dim,
                        actual: p.dim(),
                    });
                }
                self.nearest(p).ok_or(UdmError::EmptyDataset)
            })
            .collect()
    }

    /// The configuration.
    pub fn config(&self) -> &MaintainerConfig {
        &self.config
    }

    /// Dimensionality of the maintained points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Current number of (non-empty) micro-clusters (≤ `q`).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Total number of points absorbed.
    pub fn points_seen(&self) -> u64 {
        self.points_seen
    }

    /// The maintained micro-clusters.
    pub fn clusters(&self) -> &[MicroCluster] {
        &self.clusters
    }

    /// Consumes the maintainer, returning the clusters.
    pub fn into_clusters(self) -> Vec<MicroCluster> {
        self.clusters
    }

    /// Reconstructs a maintainer from previously built clusters (snapshot
    /// restore path).
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] if clusters disagree on
    /// dimensionality, [`UdmError::InvalidConfig`] if there are more
    /// clusters than `config.max_clusters` or a cluster is empty.
    pub fn from_clusters(clusters: Vec<MicroCluster>, config: MaintainerConfig) -> Result<Self> {
        config.validate()?;
        if clusters.len() > config.max_clusters {
            return Err(UdmError::InvalidConfig(format!(
                "{} clusters exceed max_clusters = {}",
                clusters.len(),
                config.max_clusters
            )));
        }
        let dim = clusters.first().map(|c| c.dim()).unwrap_or(0);
        let mut centroids = Vec::with_capacity(clusters.len());
        let mut points_seen = 0;
        for c in &clusters {
            if c.dim() != dim {
                return Err(UdmError::DimensionMismatch {
                    expected: dim,
                    actual: c.dim(),
                });
            }
            let centroid = c.centroid().ok_or_else(|| {
                UdmError::InvalidConfig("snapshot contains an empty micro-cluster".into())
            })?;
            centroids.push(centroid);
            points_seen += c.n();
        }
        Ok(MicroClusterMaintainer {
            config,
            dim,
            clusters,
            centroids,
            points_seen,
        })
    }

    /// Absorbs one point, returning the index of the cluster it joined.
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] on wrong dimensionality.
    pub fn insert(&mut self, point: &UncertainPoint) -> Result<usize> {
        if point.dim() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: point.dim(),
            });
        }
        if self.clusters.len() < self.config.max_clusters {
            // Warm-up: seed a new cluster with this arrival.
            self.clusters.push(MicroCluster::from_point(point));
            self.centroids.push(point.values().to_vec());
            self.points_seen += 1;
            Ok(self.clusters.len() - 1)
        } else {
            // max_clusters ≥ 1 is validated at construction, so at least one
            // cluster exists after warm-up; the error path is unreachable
            // but typed rather than panicking.
            let idx = self.nearest(point).ok_or(UdmError::EmptyDataset)?;
            if udm_observe::enabled() {
                // One extra distance evaluation per absorbed point, only
                // when telemetry is recording.
                let d = self.config.distance.evaluate(point, &self.centroids[idx]);
                udm_observe::histogram_observe!("udm_microcluster_assign_distance", d);
            }
            self.absorb_at(idx, point)?;
            Ok(idx)
        }
    }

    /// Folds `point` into cluster `idx`, refreshing its cached centroid.
    fn absorb_at(&mut self, idx: usize, point: &UncertainPoint) -> Result<()> {
        self.clusters[idx].insert(point)?;
        let c = &self.clusters[idx];
        let inv = 1.0 / f64_from_count(c.n());
        for (slot, &sum) in self.centroids[idx].iter_mut().zip(c.cf1().iter()) {
            *slot = sum * inv;
        }
        self.points_seen += 1;
        Ok(())
    }

    /// Index of the nearest centroid under the configured distance, or
    /// `None` when no clusters exist yet. Does not modify state.
    ///
    /// Exact ties on the primary distance — common under the
    /// error-adjusted metric, whose per-dimension clamp maps every
    /// centroid within a noisy point's error box to distance 0 — are
    /// broken by plain Euclidean distance, so clusters stay spatially
    /// coherent instead of piling tied points into the lowest index.
    // Tie detection needs the exact `d == best_d` below; a tolerance
    // would merge near-ties and mis-group (see the udm-lint waiver).
    #[allow(clippy::float_cmp)]
    pub fn nearest(&self, point: &UncertainPoint) -> Option<usize> {
        let mut best = None;
        let mut best_d = f64::INFINITY;
        let mut best_tie = f64::INFINITY;
        let needs_tie_break = self.config.distance != AssignmentDistance::Euclidean;
        for (i, centroid) in self.centroids.iter().enumerate() {
            let d = self.config.distance.evaluate(point, centroid);
            if d < best_d {
                best_d = d;
                best_tie = if needs_tie_break {
                    crate::distance::euclidean_sq(point.values(), centroid)
                } else {
                    0.0
                };
                best = Some(i);
            // exact ties are the norm under the Eq. 5 clamp; tolerance would mis-group
            } else if needs_tie_break && d == best_d {
                let tie = crate::distance::euclidean_sq(point.values(), centroid);
                if tie < best_tie {
                    best_tie = tie;
                    best = Some(i);
                }
            }
        }
        best
    }
}

/// Thread-safe wrapper for concurrent ingestion from multiple producers.
///
/// Single-pass maintenance is inherently sequential per cluster set; this
/// wrapper serializes insertions behind a [`parking_lot::Mutex`] so
/// multiple stream shards can feed one summary without external locking.
#[derive(Debug)]
pub struct ConcurrentMaintainer {
    inner: Mutex<MicroClusterMaintainer>,
}

impl ConcurrentMaintainer {
    /// Wraps a maintainer.
    pub fn new(maintainer: MicroClusterMaintainer) -> Self {
        ConcurrentMaintainer {
            inner: Mutex::new(maintainer),
        }
    }

    /// Inserts a point (serialized across threads).
    pub fn insert(&self, point: &UncertainPoint) -> Result<usize> {
        self.inner.lock().insert(point)
    }

    /// Total points absorbed so far.
    pub fn points_seen(&self) -> u64 {
        self.inner.lock().points_seen()
    }

    /// Unwraps to the inner maintainer.
    pub fn into_inner(self) -> MicroClusterMaintainer {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(values: &[f64], errors: &[f64]) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec()).unwrap()
    }

    #[test]
    fn zero_q_is_rejected() {
        assert!(MicroClusterMaintainer::new(2, MaintainerConfig::new(0)).is_err());
    }

    #[test]
    fn warmup_seeds_first_q_points() {
        let mut m = MicroClusterMaintainer::new(1, MaintainerConfig::new(3)).unwrap();
        for i in 0..3 {
            let idx = m.insert(&pt(&[i as f64 * 100.0], &[0.0])).unwrap();
            assert_eq!(idx, i);
        }
        assert_eq!(m.num_clusters(), 3);
        assert_eq!(m.points_seen(), 3);
    }

    #[test]
    fn post_warmup_assigns_to_nearest() {
        let mut m = MicroClusterMaintainer::new(1, MaintainerConfig::new(2)).unwrap();
        m.insert(&pt(&[0.0], &[0.0])).unwrap();
        m.insert(&pt(&[100.0], &[0.0])).unwrap();
        let idx = m.insert(&pt(&[1.0], &[0.0])).unwrap();
        assert_eq!(idx, 0);
        let idx = m.insert(&pt(&[99.0], &[0.0])).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(m.num_clusters(), 2);
        assert_eq!(m.points_seen(), 4);
    }

    #[test]
    fn centroids_update_incrementally() {
        let mut m = MicroClusterMaintainer::new(1, MaintainerConfig::new(1)).unwrap();
        m.insert(&pt(&[0.0], &[0.0])).unwrap();
        m.insert(&pt(&[2.0], &[0.0])).unwrap();
        m.insert(&pt(&[4.0], &[0.0])).unwrap();
        assert_eq!(m.clusters()[0].centroid().unwrap(), vec![2.0]);
        // nearest() must use the *updated* centroid
        let near = m.nearest(&pt(&[2.1], &[0.0])).unwrap();
        assert_eq!(near, 0);
    }

    #[test]
    fn error_adjusted_assignment_differs_from_euclidean() {
        // Two far-apart seeds; a noisy point whose error along dim 0 points
        // at the farther seed (the Figure 2 scenario).
        let seeds = [pt(&[10.0, 0.0], &[0.0, 0.0]), pt(&[0.0, 4.0], &[0.0, 0.0])];
        let noisy = pt(&[0.0, 0.0], &[12.0, 0.1]);

        let mut adj = MicroClusterMaintainer::new(2, MaintainerConfig::new(2)).unwrap();
        let mut euc = MicroClusterMaintainer::new(
            2,
            MaintainerConfig {
                max_clusters: 2,
                distance: AssignmentDistance::Euclidean,
            },
        )
        .unwrap();
        for s in &seeds {
            adj.insert(s).unwrap();
            euc.insert(s).unwrap();
        }
        assert_eq!(adj.insert(&noisy).unwrap(), 0); // error swallows dim 0
        assert_eq!(euc.insert(&noisy).unwrap(), 1); // plain distance prefers closer seed
    }

    #[test]
    fn never_creates_beyond_q_and_never_discards() {
        let mut m = MicroClusterMaintainer::new(1, MaintainerConfig::new(4)).unwrap();
        for i in 0..1000 {
            m.insert(&pt(&[(i % 17) as f64], &[0.5])).unwrap();
        }
        assert_eq!(m.num_clusters(), 4);
        assert_eq!(m.points_seen(), 1000);
        let total: u64 = m.clusters().iter().map(|c| c.n()).sum();
        assert_eq!(total, 1000); // every point reflected in the statistics
    }

    #[test]
    fn from_dataset_single_pass() {
        let d = UncertainDataset::from_points(
            (0..50).map(|i| pt(&[i as f64], &[0.1])).collect::<Vec<_>>(),
        )
        .unwrap();
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(8)).unwrap();
        assert_eq!(m.points_seen(), 50);
        assert_eq!(m.num_clusters(), 8);
    }

    fn drifting_dataset(n: usize) -> UncertainDataset {
        UncertainDataset::from_points(
            (0..n)
                .map(|i| {
                    let x = (i as f64 * 0.618_033_988_749).fract() * 20.0;
                    pt(&[x, (i % 7) as f64], &[0.1, (i % 3) as f64 * 0.2])
                })
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn batched_with_batch_one_matches_streaming_exactly() {
        let d = drifting_dataset(200);
        let stream = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(10)).unwrap();
        let batched =
            MicroClusterMaintainer::from_dataset_batched(&d, MaintainerConfig::new(10), 1).unwrap();
        assert_eq!(stream.clusters(), batched.clusters());
        assert_eq!(stream.points_seen(), batched.points_seen());
    }

    #[test]
    fn batched_pass_is_deterministic_and_conserves_counts() {
        let d = drifting_dataset(500);
        for batch in [7, 64, 1000] {
            let a =
                MicroClusterMaintainer::from_dataset_batched(&d, MaintainerConfig::new(12), batch)
                    .unwrap();
            let b =
                MicroClusterMaintainer::from_dataset_batched(&d, MaintainerConfig::new(12), batch)
                    .unwrap();
            assert_eq!(a.clusters(), b.clusters(), "batch {batch}");
            assert_eq!(a.points_seen(), 500);
            let total: u64 = a.clusters().iter().map(|c| c.n()).sum();
            assert_eq!(total, 500);
            assert_eq!(a.num_clusters(), 12);
        }
        assert!(
            MicroClusterMaintainer::from_dataset_batched(&d, MaintainerConfig::new(12), 0).is_err()
        );
    }

    #[test]
    fn assignments_match_pointwise_nearest() {
        let d = drifting_dataset(120);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(6)).unwrap();
        let par = m.assignments(&d).unwrap();
        for (i, p) in d.iter().enumerate() {
            assert_eq!(par[i], m.nearest(p).unwrap());
        }
        let empty = MicroClusterMaintainer::new(2, MaintainerConfig::new(2)).unwrap();
        assert!(empty.assignments(&d).is_err());
    }

    #[test]
    fn insert_validates_dim() {
        let mut m = MicroClusterMaintainer::new(2, MaintainerConfig::new(2)).unwrap();
        assert!(m.insert(&pt(&[0.0], &[0.0])).is_err());
    }

    #[test]
    fn from_clusters_roundtrip() {
        let mut m = MicroClusterMaintainer::new(1, MaintainerConfig::new(2)).unwrap();
        for i in 0..10 {
            m.insert(&pt(&[i as f64], &[0.0])).unwrap();
        }
        let config = *m.config();
        let clusters = m.clone().into_clusters();
        let restored = MicroClusterMaintainer::from_clusters(clusters, config).unwrap();
        assert_eq!(restored.points_seen(), 10);
        assert_eq!(restored.num_clusters(), 2);
        // Assignment behaviour must be identical after restore.
        let p = pt(&[3.3], &[0.0]);
        assert_eq!(restored.nearest(&p), m.nearest(&p));
    }

    #[test]
    fn from_clusters_validates() {
        let c1 = MicroCluster::from_point(&pt(&[0.0], &[0.0]));
        let c2 = MicroCluster::from_point(&pt(&[0.0, 1.0], &[0.0, 0.0]));
        assert!(MicroClusterMaintainer::from_clusters(
            vec![c1.clone(), c2],
            MaintainerConfig::new(4)
        )
        .is_err());
        assert!(MicroClusterMaintainer::from_clusters(
            vec![c1.clone(), c1.clone(), c1],
            MaintainerConfig::new(2)
        )
        .is_err());
        assert!(MicroClusterMaintainer::from_clusters(
            vec![MicroCluster::new(1)],
            MaintainerConfig::new(2)
        )
        .is_err());
    }

    #[test]
    fn concurrent_maintainer_absorbs_from_threads() {
        let m = MicroClusterMaintainer::new(1, MaintainerConfig::new(4)).unwrap();
        let shared = ConcurrentMaintainer::new(m);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let shared = &shared;
                scope.spawn(move || {
                    for i in 0..100 {
                        shared
                            .insert(&pt(&[(t * 100 + i) as f64 % 13.0], &[0.2]))
                            .unwrap();
                    }
                });
            }
        });
        let inner = shared.into_inner();
        assert_eq!(inner.points_seen(), 400);
        let total: u64 = inner.clusters().iter().map(|c| c.n()).sum();
        assert_eq!(total, 400);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn every_point_is_reflected_in_the_statistics(
            rows in proptest::collection::vec(
                (-100.0f64..100.0, 0.0f64..10.0),
                1..120,
            ),
            q in 1usize..12,
        ) {
            // The paper's requirement: clusters are never discarded, so
            // counts and value sums are conserved exactly.
            let mut m = MicroClusterMaintainer::new(1, MaintainerConfig::new(q)).unwrap();
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            let mut err_sq = 0.0;
            for &(v, e) in &rows {
                m.insert(&UncertainPoint::new(vec![v], vec![e]).unwrap()).unwrap();
                sum += v;
                sum_sq += v * v;
                err_sq += e * e;
            }
            let n: u64 = m.clusters().iter().map(|c| c.n()).sum();
            prop_assert_eq!(n, rows.len() as u64);
            let cf1: f64 = m.clusters().iter().map(|c| c.cf1()[0]).sum();
            let cf2: f64 = m.clusters().iter().map(|c| c.cf2()[0]).sum();
            let ef2: f64 = m.clusters().iter().map(|c| c.ef2()[0]).sum();
            prop_assert!((cf1 - sum).abs() < 1e-6);
            prop_assert!((cf2 - sum_sq).abs() < 1e-4);
            prop_assert!((ef2 - err_sq).abs() < 1e-6);
            prop_assert!(m.num_clusters() <= q);
        }

        #[test]
        fn assignment_respects_nearest_centroid(
            rows in proptest::collection::vec(-100.0f64..100.0, 3..60),
        ) {
            // With exact points (ψ = 0) the error-adjusted assignment is
            // plain Euclidean: nearest() must return an actual minimizer.
            let mut m = MicroClusterMaintainer::new(1, MaintainerConfig::new(3)).unwrap();
            for &v in &rows {
                m.insert(&UncertainPoint::exact(vec![v]).unwrap()).unwrap();
            }
            let probe = UncertainPoint::exact(vec![rows[0] * 0.5]).unwrap();
            let chosen = m.nearest(&probe).unwrap();
            let chosen_d = {
                let c = m.clusters()[chosen].centroid().unwrap()[0];
                (probe.value(0) - c).powi(2)
            };
            for cl in m.clusters() {
                let c = cl.centroid().unwrap()[0];
                prop_assert!(chosen_d <= (probe.value(0) - c).powi(2) + 1e-9);
            }
        }
    }
}
