//! Pseudo-points: micro-clusters viewed as single weighted uncertain
//! points with the combined error of Lemma 1.

use crate::feature::MicroCluster;
use serde::{Deserialize, Serialize};
use udm_core::num::clamped_sqrt;
use udm_core::{Result, UdmError};

/// A micro-cluster collapsed to one weighted point.
///
/// Lemma 1: treating each member `X` as an observation of the cluster's
/// centroid with bias `X − c(C)` and variance `ψ(X)²`, the pseudo-point's
/// mean squared error per dimension is
///
/// ```text
/// Δ_j(C)² = CF2x_j/r − (CF1x_j/r)² + EF2_j/r
///         = within-cluster variance + mean squared member error
/// ```
///
/// The kernel of Eq. 9 uses the corresponding standard error
/// `Δ_j(C) = √(Δ_j(C)²)` exactly where the point kernel uses `ψ_j`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PseudoPoint {
    /// Centroid `c(C)`.
    pub centroid: Vec<f64>,
    /// Per-dimension standard error `Δ_j(C)`.
    pub delta: Vec<f64>,
    /// Weight `n(C)` — the number of original points the pseudo-point
    /// stands for (Eq. 10 weights kernels by this count).
    pub weight: u64,
}

impl PseudoPoint {
    /// Builds the pseudo-point for a micro-cluster.
    ///
    /// When `error_adjusted` is `false` the `EF2` term is dropped, so Δ
    /// reduces to the pure within-cluster spread — this is the switch used
    /// by the unadjusted baseline classifier.
    ///
    /// # Errors
    ///
    /// [`UdmError::EmptyDataset`] for an empty cluster.
    pub fn from_cluster(cluster: &MicroCluster, error_adjusted: bool) -> Result<Self> {
        let centroid = cluster.centroid().ok_or(UdmError::EmptyDataset)?;
        let delta = (0..cluster.dim())
            .map(|j| {
                let mut dsq = cluster.variance(j);
                if error_adjusted {
                    dsq += cluster.mean_squared_error(j);
                }
                // Lemma 1: Δ² is mathematically ≥ 0 but the CF2/r − (CF1/r)²
                // term can go negative under FP cancellation; the clamp is
                // counted (udm_core::num::negative_clamp_count).
                clamped_sqrt(dsq)
            })
            .collect();
        Ok(PseudoPoint {
            centroid,
            delta,
            weight: cluster.n(),
        })
    }

    /// Dimensionality of the pseudo-point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.centroid.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::UncertainPoint;

    fn pt(values: &[f64], errors: &[f64]) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec()).unwrap()
    }

    #[test]
    fn empty_cluster_is_rejected() {
        let c = MicroCluster::new(2);
        assert!(PseudoPoint::from_cluster(&c, true).is_err());
    }

    #[test]
    fn lemma1_matches_direct_average() {
        // Δ_j² must equal the direct average of bias² + ψ² over members.
        let members = [
            pt(&[1.0, 10.0], &[0.5, 1.0]),
            pt(&[3.0, 12.0], &[0.0, 2.0]),
            pt(&[2.0, 14.0], &[1.5, 0.0]),
        ];
        let mut c = MicroCluster::new(2);
        for m in &members {
            c.insert(m).unwrap();
        }
        let p = PseudoPoint::from_cluster(&c, true).unwrap();
        let centroid = c.centroid().unwrap();
        for (j, &centre) in centroid.iter().enumerate() {
            let direct: f64 = members
                .iter()
                .map(|m| {
                    let bias = m.value(j) - centre;
                    bias * bias + m.error(j) * m.error(j)
                })
                .sum::<f64>()
                / members.len() as f64;
            assert!(
                (p.delta[j] * p.delta[j] - direct).abs() < 1e-9,
                "dim {j}: {} vs {direct}",
                p.delta[j] * p.delta[j]
            );
        }
    }

    #[test]
    fn singleton_cluster_delta_equals_member_error() {
        let c = MicroCluster::from_point(&pt(&[5.0], &[1.25]));
        let p = PseudoPoint::from_cluster(&c, true).unwrap();
        assert_eq!(p.centroid, vec![5.0]);
        assert!((p.delta[0] - 1.25).abs() < 1e-12);
        assert_eq!(p.weight, 1);
    }

    #[test]
    fn unadjusted_drops_error_term() {
        let mut c = MicroCluster::new(1);
        c.insert(&pt(&[0.0], &[3.0])).unwrap();
        c.insert(&pt(&[2.0], &[3.0])).unwrap();
        let adj = PseudoPoint::from_cluster(&c, true).unwrap();
        let unadj = PseudoPoint::from_cluster(&c, false).unwrap();
        // within-cluster variance = 1 (values 0,2); EF2/n = 9
        assert!((unadj.delta[0] - 1.0).abs() < 1e-12);
        assert!((adj.delta[0] - (10.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn exact_singleton_has_zero_delta() {
        let c = MicroCluster::from_point(&pt(&[7.0, -1.0], &[0.0, 0.0]));
        let p = PseudoPoint::from_cluster(&c, true).unwrap();
        assert_eq!(p.delta, vec![0.0, 0.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use udm_core::UncertainPoint;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn lemma1_property(
            rows in proptest::collection::vec((-100.0f64..100.0, 0.0f64..10.0), 1..40)
        ) {
            let points: Vec<UncertainPoint> = rows
                .iter()
                .map(|&(v, e)| UncertainPoint::new(vec![v], vec![e]).unwrap())
                .collect();
            let mut c = MicroCluster::new(1);
            for p in &points {
                c.insert(p).unwrap();
            }
            let pseudo = PseudoPoint::from_cluster(&c, true).unwrap();
            let centroid = c.centroid().unwrap()[0];
            let direct: f64 = points
                .iter()
                .map(|p| {
                    let bias = p.value(0) - centroid;
                    bias * bias + p.error(0) * p.error(0)
                })
                .sum::<f64>() / points.len() as f64;
            prop_assert!((pseudo.delta[0].powi(2) - direct).abs() < 1e-5);
        }

        #[test]
        fn delta_at_least_unadjusted(
            rows in proptest::collection::vec((-100.0f64..100.0, 0.0f64..10.0), 1..40)
        ) {
            let mut c = MicroCluster::new(1);
            for &(v, e) in &rows {
                c.insert(&UncertainPoint::new(vec![v], vec![e]).unwrap()).unwrap();
            }
            let adj = PseudoPoint::from_cluster(&c, true).unwrap();
            let unadj = PseudoPoint::from_cluster(&c, false).unwrap();
            prop_assert!(adj.delta[0] + 1e-12 >= unadj.delta[0]);
        }
    }
}
