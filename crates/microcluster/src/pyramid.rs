//! Pyramidal time frame: snapshots of micro-cluster state at
//! geometrically spaced moments, enabling *horizon queries* over streams.
//!
//! The paper's micro-clusters come from the CluStream framework (reference \[2\]),
//! whose second pillar is the pyramidal time frame: summaries are stored
//! at timestamps of different *orders* (multiples of `α^i`), keeping only
//! the most recent few per order. Because the `CFT` statistics of
//! Definition 1 are **additive**, the summary of any time window
//! `(t₁, t₂]` can be reconstructed by component-wise *subtraction* of the
//! snapshot at `t₁` from the snapshot at `t₂` — giving densities and
//! classifiers "over the last hour" from O(log t) stored summaries.
//!
//! Subtraction is exact here because this crate's maintainer never
//! creates or discards clusters after warm-up (the paper's variation),
//! so cluster `i` at time `t₁` is always a prefix of cluster `i` at
//! `t₂ ≥ t₁`.

use crate::feature::MicroCluster;
use serde::{Deserialize, Serialize};
use udm_core::{Result, UdmError};

/// Subtracts `earlier` from `later` component-wise: the statistics of
/// exactly the points that arrived in between.
///
/// # Errors
///
/// [`UdmError::DimensionMismatch`] on differing dimensionality;
/// [`UdmError::InvalidConfig`] if `earlier` is not a prefix of `later`
/// (more points, or larger sums than the later snapshot on any
/// accumulator — which would produce a physically impossible summary).
pub fn subtract_clusters(later: &MicroCluster, earlier: &MicroCluster) -> Result<MicroCluster> {
    if later.dim() != earlier.dim() {
        return Err(UdmError::DimensionMismatch {
            expected: later.dim(),
            actual: earlier.dim(),
        });
    }
    if earlier.n() > later.n() {
        return Err(UdmError::InvalidConfig(
            "earlier snapshot has more points than the later one".into(),
        ));
    }
    let dim = later.dim();
    let mut cf1 = Vec::with_capacity(dim);
    let mut cf2 = Vec::with_capacity(dim);
    let mut ef2 = Vec::with_capacity(dim);
    for j in 0..dim {
        cf1.push(later.cf1()[j] - earlier.cf1()[j]);
        let d2 = later.cf2()[j] - earlier.cf2()[j];
        let e2 = later.ef2()[j] - earlier.ef2()[j];
        if d2 < -1e-9 || e2 < -1e-9 {
            return Err(UdmError::InvalidConfig(
                "earlier snapshot is not a prefix of the later one".into(),
            ));
        }
        cf2.push(d2.max(0.0));
        ef2.push(e2.max(0.0));
    }
    MicroCluster::from_raw(
        cf2,
        ef2,
        cf1,
        later.n() - earlier.n(),
        later.last_timestamp(),
    )
}

/// Subtracts two whole snapshots (cluster-by-cluster); clusters that were
/// not yet seeded at the earlier time are passed through unchanged, and
/// clusters whose window difference is empty are dropped.
pub fn subtract_snapshots(
    later: &[MicroCluster],
    earlier: &[MicroCluster],
) -> Result<Vec<MicroCluster>> {
    if earlier.len() > later.len() {
        return Err(UdmError::InvalidConfig(
            "earlier snapshot has more clusters than the later one".into(),
        ));
    }
    let mut out = Vec::with_capacity(later.len());
    for (i, l) in later.iter().enumerate() {
        let diff = match earlier.get(i) {
            Some(e) => subtract_clusters(l, e)?,
            None => l.clone(),
        };
        if !diff.is_empty() {
            out.push(diff);
        }
    }
    Ok(out)
}

/// A snapshot of the full micro-cluster state at one stream timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedSnapshot {
    /// Stream time the snapshot was taken at.
    pub timestamp: u64,
    /// Micro-cluster statistics at that time.
    pub clusters: Vec<MicroCluster>,
}

/// Pyramidal store: keeps up to `capacity` snapshots per order `i`, where
/// order-`i` snapshots are those taken at timestamps divisible by `αⁱ`
/// but not `αⁱ⁺¹`. Total storage is `O(capacity · log_α T)` for a stream
/// of length `T`, yet any horizon is approximated by a stored snapshot
/// within a factor-`α` timestamp error (the CluStream guarantee).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PyramidalStore {
    alpha: u64,
    capacity: usize,
    /// `orders[i]` = snapshots of order `i`, oldest first.
    orders: Vec<Vec<TimedSnapshot>>,
}

impl PyramidalStore {
    /// Creates a store with base `alpha ≥ 2` keeping `capacity ≥ 1`
    /// snapshots per order.
    pub fn new(alpha: u64, capacity: usize) -> Result<Self> {
        if alpha < 2 {
            return Err(UdmError::InvalidConfig("alpha must be at least 2".into()));
        }
        if capacity == 0 {
            return Err(UdmError::InvalidConfig(
                "capacity must be at least 1".into(),
            ));
        }
        Ok(PyramidalStore {
            alpha,
            capacity,
            orders: Vec::new(),
        })
    }

    /// The order of a timestamp: the largest `i` with `αⁱ | t` (0 for
    /// timestamps not divisible by α; `t = 0` is assigned order 0).
    fn order_of(&self, t: u64) -> usize {
        if t == 0 {
            return 0;
        }
        let mut order = 0;
        let mut t = t;
        while t.is_multiple_of(self.alpha) {
            order += 1;
            t /= self.alpha;
        }
        order
    }

    /// Records a snapshot taken at stream time `t`. Snapshots must be
    /// offered in non-decreasing timestamp order.
    ///
    /// # Errors
    ///
    /// [`UdmError::InvalidConfig`] on out-of-order timestamps.
    pub fn record(&mut self, timestamp: u64, clusters: Vec<MicroCluster>) -> Result<()> {
        if let Some(last) = self.latest_timestamp() {
            if timestamp < last {
                return Err(UdmError::InvalidConfig(format!(
                    "snapshot at {timestamp} offered after {last}"
                )));
            }
        }
        let order = self.order_of(timestamp);
        while self.orders.len() <= order {
            self.orders.push(Vec::new());
        }
        let slot = &mut self.orders[order];
        slot.push(TimedSnapshot {
            timestamp,
            clusters,
        });
        if slot.len() > self.capacity {
            slot.remove(0);
        }
        Ok(())
    }

    /// Most recent timestamp stored, across all orders.
    pub fn latest_timestamp(&self) -> Option<u64> {
        self.orders
            .iter()
            .flat_map(|o| o.iter().map(|s| s.timestamp))
            .max()
    }

    /// Total snapshots currently held.
    pub fn len(&self) -> usize {
        self.orders.iter().map(|o| o.len()).sum()
    }

    /// `true` when no snapshot is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stored snapshot with the largest timestamp `≤ t`, if any.
    pub fn snapshot_at_or_before(&self, t: u64) -> Option<&TimedSnapshot> {
        self.orders
            .iter()
            .flat_map(|o| o.iter())
            .filter(|s| s.timestamp <= t)
            .max_by_key(|s| s.timestamp)
    }

    /// Approximate summary of the window `(t − horizon, now]`: subtracts
    /// the best stored snapshot at or before `now − horizon` from the
    /// most recent snapshot.
    ///
    /// # Errors
    ///
    /// [`UdmError::EmptyDataset`] when the store is empty.
    pub fn window_summary(&self, horizon: u64) -> Result<Vec<MicroCluster>> {
        let latest_ts = self.latest_timestamp().ok_or(UdmError::EmptyDataset)?;
        // latest_timestamp() is derived from the stored snapshots, so a
        // snapshot at that timestamp necessarily exists; stay typed anyway.
        let latest = self
            .snapshot_at_or_before(latest_ts)
            .ok_or(UdmError::EmptyDataset)?;
        let cutoff = latest_ts.saturating_sub(horizon);
        match self.snapshot_at_or_before(cutoff) {
            Some(earlier) if earlier.timestamp < latest.timestamp => {
                subtract_snapshots(&latest.clusters, &earlier.clusters)
            }
            // No snapshot before the cutoff: the whole history fits.
            _ => Ok(latest.clusters.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintainer::{MaintainerConfig, MicroClusterMaintainer};
    use udm_core::UncertainPoint;

    fn pt(v: f64, e: f64, t: u64) -> UncertainPoint {
        UncertainPoint::new(vec![v], vec![e])
            .unwrap()
            .with_timestamp(t)
    }

    #[test]
    fn subtraction_recovers_window_statistics() {
        // Stream 100 points, snapshot at 60 and 100; the difference must
        // equal the statistics of points 60..100 per cluster.
        let mut m = MicroClusterMaintainer::new(1, MaintainerConfig::new(4)).unwrap();
        let mut at60 = None;
        for i in 0..100u64 {
            m.insert(&pt((i % 13) as f64, 0.1, i)).unwrap();
            if i == 59 {
                at60 = Some(m.clusters().to_vec());
            }
        }
        let at100 = m.clusters().to_vec();
        let window = subtract_snapshots(&at100, &at60.unwrap()).unwrap();
        let total: u64 = window.iter().map(|c| c.n()).sum();
        assert_eq!(total, 40);
        // Every accumulator non-negative and bounded by the later state.
        for (w, l) in window.iter().zip(at100.iter()) {
            assert!(w.n() <= l.n());
            assert!(w.cf2()[0] <= l.cf2()[0] + 1e-9);
            assert!(w.ef2()[0] >= 0.0);
        }
    }

    #[test]
    fn subtract_validates_prefix_property() {
        let mut a = MicroCluster::new(1);
        a.insert(&pt(1.0, 0.0, 0)).unwrap();
        let mut b = a.clone();
        b.insert(&pt(2.0, 0.0, 1)).unwrap();
        assert!(subtract_clusters(&b, &a).is_ok());
        assert!(subtract_clusters(&a, &b).is_err()); // reversed
        let wrong_dim = MicroCluster::new(2);
        assert!(subtract_clusters(&b, &wrong_dim).is_err());
    }

    #[test]
    fn order_assignment() {
        let store = PyramidalStore::new(2, 3).unwrap();
        assert_eq!(store.order_of(0), 0);
        assert_eq!(store.order_of(1), 0);
        assert_eq!(store.order_of(2), 1);
        assert_eq!(store.order_of(4), 2);
        assert_eq!(store.order_of(6), 1);
        assert_eq!(store.order_of(8), 3);
    }

    #[test]
    fn capacity_bounds_total_storage_logarithmically() {
        let mut store = PyramidalStore::new(2, 2).unwrap();
        for t in 1..=1024u64 {
            store.record(t, vec![]).unwrap();
        }
        // ≤ capacity × (log2(1024) + 1) = 2 × 11 = 22
        assert!(store.len() <= 22, "{} snapshots", store.len());
        // The latest timestamp is always retained.
        assert_eq!(store.latest_timestamp(), Some(1024));
    }

    #[test]
    fn rejects_bad_configuration_and_order() {
        assert!(PyramidalStore::new(1, 3).is_err());
        assert!(PyramidalStore::new(2, 0).is_err());
        let mut store = PyramidalStore::new(2, 2).unwrap();
        store.record(10, vec![]).unwrap();
        assert!(store.record(5, vec![]).is_err());
        assert!(store.record(10, vec![]).is_ok()); // equal is allowed
    }

    #[test]
    fn snapshot_lookup_finds_best_at_or_before() {
        let mut store = PyramidalStore::new(2, 4).unwrap();
        for t in [1u64, 2, 4, 8, 12, 16] {
            store.record(t, vec![]).unwrap();
        }
        assert_eq!(store.snapshot_at_or_before(9).unwrap().timestamp, 8);
        assert_eq!(store.snapshot_at_or_before(16).unwrap().timestamp, 16);
        assert!(store.snapshot_at_or_before(0).is_none());
    }

    #[test]
    fn window_summary_end_to_end() {
        // Phase 1 (t < 500): stream around 0. Phase 2 (t ≥ 500): around 50.
        // A recent-window summary must be dominated by phase-2 mass.
        let mut m = MicroClusterMaintainer::new(1, MaintainerConfig::new(6)).unwrap();
        let mut store = PyramidalStore::new(2, 3).unwrap();
        for t in 0..1000u64 {
            let v = if t < 500 {
                (t % 7) as f64
            } else {
                50.0 + (t % 7) as f64
            };
            m.insert(&pt(v, 0.1, t)).unwrap();
            if t > 0 && t % 50 == 0 {
                store.record(t, m.clusters().to_vec()).unwrap();
            }
        }
        store.record(999, m.clusters().to_vec()).unwrap();

        let recent = store.window_summary(100).unwrap();
        let total: u64 = recent.iter().map(|c| c.n()).sum();
        assert!(total <= 150, "window too large: {total}");
        // Weighted mean of the window sits in phase-2 territory.
        let weighted_mean: f64 = recent
            .iter()
            .map(|c| c.centroid().unwrap()[0] * c.n() as f64)
            .sum::<f64>()
            / total as f64;
        assert!(weighted_mean > 40.0, "mean {weighted_mean}");

        // A full-history horizon returns everything.
        let all = store.window_summary(10_000).unwrap();
        let total_all: u64 = all.iter().map(|c| c.n()).sum();
        assert_eq!(total_all, 1000);
    }

    #[test]
    fn empty_store_rejects_queries() {
        let store = PyramidalStore::new(2, 2).unwrap();
        assert!(store.is_empty());
        assert!(store.window_summary(10).is_err());
    }
}
