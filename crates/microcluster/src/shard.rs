//! Sharded fault-domain ingest: mergeable model partials, a shard
//! supervisor with retry/backoff and warm restarts, and degraded-mode
//! serving.
//!
//! The CFT statistics of Definition 1 are additive, which makes a
//! micro-cluster summary a *mergeable partial aggregate*: S shards can
//! each maintain an independent summary over a partition of the stream
//! and the union of their cluster lists is itself a valid summary of
//! the whole stream. [`MicroClusterModel`] packages that idea — a
//! cluster list kept in a canonical total order so that merging is
//! associative and commutative *bit-for-bit*, not just approximately:
//! merge is list concatenation followed by a canonical re-sort, and
//! every derived aggregate is computed in canonical order, so any merge
//! order over the same partials yields identical bytes.
//!
//! Against bulk single-stream ingest the comparison is necessarily
//! looser: per-shard maintainers run their own warm-up and assignment,
//! so the *clustering* differs, but the aggregate CFT sums are
//! conserved up to floating-point summation order — the proptests below
//! pin `n` exactly and the float sums to a documented ulp budget
//! ([`AGGREGATE_ULP_BOUND`]).
//!
//! [`ShardSupervisor`] runs the PR-3 ingest policy engine per shard —
//! each shard owns a [`CheckpointDriver`] with its own versioned
//! checkpoint file — and partitions records by `seq % S`. A shard crash
//! is handled with bounded retries, exponential backoff and a restart
//! timeout budget; a warm restart recovers the shard's last checkpoint
//! (falling back to the previous generation if the latest is damaged)
//! and replays only that shard's partition tail. When a shard stays
//! dead, the supervisor serves a merged model from the surviving shards
//! plus any dead shard whose last checkpoint is within the staleness
//! budget, and reports the covered fraction.
//!
//! Threading note: shard workers are driven sequentially here — the
//! partition function is deterministic and each worker owns disjoint
//! state, so the loop is embarrassingly parallel and a
//! `std::thread::scope` seam can drop in without changing any
//! observable state. The sequential drive is what keeps the crash
//! drills bit-reproducible on a 1-core CI host.

use crate::checkpoint::{load_checkpoint_with_fallback, prev_path, CheckpointDriver};
use crate::feature::MicroCluster;
use crate::ingest::{IngestCounters, IngestPolicy, ResilientIngestor};
use crate::maintainer::{MaintainerConfig, MicroClusterMaintainer};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use udm_core::num::{f64_from_count, f64_from_usize};
use udm_core::{Result, UdmError};
use udm_data::fault::RawRecord;

/// Documented tolerance for comparing sharded aggregate CFT sums
/// against bulk single-stream ingest: the partials are summed in a
/// different order, so the totals may differ by a few ulps per
/// accumulation step. For the well-conditioned workloads the proptests
/// generate (no catastrophic cancellation) the observed distance is a
/// handful of ulps; 4096 leaves two orders of magnitude of headroom
/// while still catching any real conservation bug, which would be off
/// by whole data values (millions of ulps).
pub const AGGREGATE_ULP_BOUND: u64 = 4096;

/// Ulp distance between two `f64`s: how many representable doubles lie
/// between them (0 when bit-identical; `+0.0` and `-0.0` count as
/// equal). NaN on either side reports `u64::MAX`.
#[must_use]
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Map the sign-magnitude bit pattern onto a monotone integer line.
    fn ordered(x: f64) -> i128 {
        let bits = x.to_bits();
        let magnitude = i128::from(bits & 0x7fff_ffff_ffff_ffff);
        if bits >> 63 == 0 {
            magnitude
        } else {
            -magnitude
        }
    }
    let d = ordered(a) - ordered(b);
    u64::try_from(d.unsigned_abs()).unwrap_or(u64::MAX)
}

/// The summed CFT sufficient statistics of a whole model: per-dimension
/// `Σ CF1x`, `Σ CF2x`, `Σ EF2x` plus total count and newest timestamp.
///
/// Computed in the model's canonical cluster order, so two models that
/// compare equal produce bit-identical aggregates regardless of the
/// merge order that built them.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateCft {
    /// Per-dimension value sums (`Σ CF1x_j`).
    pub cf1: Vec<f64>,
    /// Per-dimension squared-value sums (`Σ CF2x_j`).
    pub cf2: Vec<f64>,
    /// Per-dimension squared-error sums (`Σ EF2x_j`).
    pub ef2: Vec<f64>,
    /// Total member count.
    pub n: u64,
    /// Newest member timestamp.
    pub last_timestamp: u64,
}

impl AggregateCft {
    /// The largest ulp distance across every float component, or `None`
    /// when the dimensionalities disagree. `n` and `last_timestamp` are
    /// integers — callers compare them exactly.
    #[must_use]
    pub fn max_ulps(&self, other: &AggregateCft) -> Option<u64> {
        if self.cf1.len() != other.cf1.len() {
            return None;
        }
        let pairwise = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(&x, &y)| ulp_distance(x, y))
                .max()
                .unwrap_or(0)
        };
        Some(
            pairwise(&self.cf1, &other.cf1)
                .max(pairwise(&self.cf2, &other.cf2))
                .max(pairwise(&self.ef2, &other.ef2)),
        )
    }
}

/// Canonical total order over micro-clusters: member count, newest
/// timestamp, then the lexicographic `total_cmp` of `cf1`, `cf2`,
/// `ef2`. Ties across *all* keys mean the statistics are bit-identical,
/// and then relative order is immaterial.
fn canonical_cmp(a: &MicroCluster, b: &MicroCluster) -> Ordering {
    let lex = |x: &[f64], y: &[f64]| {
        x.iter()
            .zip(y)
            .map(|(p, q)| p.total_cmp(q))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or(Ordering::Equal)
    };
    a.n()
        .cmp(&b.n())
        .then_with(|| a.last_timestamp().cmp(&b.last_timestamp()))
        .then_with(|| lex(a.cf1(), b.cf1()))
        .then_with(|| lex(a.cf2(), b.cf2()))
        .then_with(|| lex(a.ef2(), b.ef2()))
}

/// A mergeable micro-cluster model partial: a cluster list held in
/// canonical order. `merge` is associative and commutative up to
/// cluster re-identification — the canonical re-sort makes equal
/// multisets of clusters compare (and serialize) bit-identically
/// whatever order they were merged in.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroClusterModel {
    dim: usize,
    clusters: Vec<MicroCluster>,
}

impl MicroClusterModel {
    /// An empty model of the given dimensionality.
    #[must_use]
    pub fn empty(dim: usize) -> Self {
        MicroClusterModel {
            dim,
            clusters: Vec::new(),
        }
    }

    /// Snapshots a maintainer's clusters into a model partial.
    #[must_use]
    pub fn from_maintainer(maintainer: &MicroClusterMaintainer) -> Self {
        let mut model = MicroClusterModel {
            dim: maintainer.dim(),
            clusters: maintainer.clusters().to_vec(),
        };
        model.canonicalize();
        model
    }

    /// Builds a model from raw clusters.
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] when a cluster disagrees with
    /// `dim`.
    pub fn from_clusters(dim: usize, clusters: Vec<MicroCluster>) -> Result<Self> {
        for c in &clusters {
            if c.dim() != dim {
                return Err(UdmError::DimensionMismatch {
                    expected: dim,
                    actual: c.dim(),
                });
            }
        }
        let mut model = MicroClusterModel { dim, clusters };
        model.canonicalize();
        Ok(model)
    }

    fn canonicalize(&mut self) {
        self.clusters.sort_by(canonical_cmp);
    }

    /// Dimensionality of the model.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The clusters, in canonical order.
    #[must_use]
    pub fn clusters(&self) -> &[MicroCluster] {
        &self.clusters
    }

    /// Number of clusters.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// True when the model holds no clusters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Total member count across clusters.
    #[must_use]
    pub fn total_points(&self) -> u64 {
        self.clusters.iter().map(MicroCluster::n).sum()
    }

    /// Merges another partial into this one. The other model's clusters
    /// are appended and the canonical order is restored, so the result
    /// is independent of merge order.
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] when the models disagree on
    /// dimensionality.
    pub fn merge(&mut self, other: &MicroClusterModel) -> Result<()> {
        if self.dim != other.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: other.dim,
            });
        }
        self.clusters.extend(other.clusters.iter().cloned());
        self.canonicalize();
        Ok(())
    }

    /// Sums the CFT statistics over all clusters, in canonical order —
    /// the quantity the crash drills compare bit-for-bit.
    #[must_use]
    pub fn aggregate(&self) -> AggregateCft {
        let mut cf1 = vec![0.0; self.dim];
        let mut cf2 = vec![0.0; self.dim];
        let mut ef2 = vec![0.0; self.dim];
        let mut n = 0u64;
        let mut last_timestamp = 0u64;
        for c in &self.clusters {
            for j in 0..self.dim {
                cf1[j] += c.cf1()[j];
                cf2[j] += c.cf2()[j];
                ef2[j] += c.ef2()[j];
            }
            n += c.n();
            last_timestamp = last_timestamp.max(c.last_timestamp());
        }
        AggregateCft {
            cf1,
            cf2,
            ef2,
            n,
            last_timestamp,
        }
    }

    /// Rebuilds a maintainer over the merged clusters (capacity sized
    /// to the cluster count), e.g. to hand the merged model to the
    /// micro-cluster KDE or a classifier.
    ///
    /// # Errors
    ///
    /// As [`MicroClusterMaintainer::from_clusters`] (an empty model is
    /// rejected there).
    pub fn to_maintainer(
        &self,
        distance: crate::distance::AssignmentDistance,
    ) -> Result<MicroClusterMaintainer> {
        let config = MaintainerConfig {
            max_clusters: self.clusters.len().max(1),
            distance,
        };
        MicroClusterMaintainer::from_clusters(self.clusters.clone(), config)
    }
}

/// Configuration of a [`ShardSupervisor`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Number of fault domains `S`; records are partitioned `seq % S`.
    pub shards: usize,
    /// Per-shard checkpoint cadence (records between checkpoints).
    pub checkpoint_every: u64,
    /// Restart attempts after a crash before the shard is declared
    /// dead.
    pub max_restarts: u32,
    /// Base backoff between restart attempts; attempt `k` waits
    /// `backoff_base_ms · 2^(k-1)` before retrying.
    pub backoff_base_ms: u64,
    /// Cumulative restart budget; exceeding it declares the shard dead
    /// even with attempts remaining.
    pub restart_timeout_ms: u64,
    /// Serving staleness budget: a dead shard whose recoverable state
    /// lags the stream by at most this many partition records still
    /// contributes to the merged model (see [`ShardSupervisor::serve`]).
    pub staleness_budget: u64,
    /// Directory holding the per-shard checkpoint files.
    pub dir: PathBuf,
}

impl ShardPlan {
    /// A plan with drill-shaped defaults: checkpoint every 64 records,
    /// 3 restarts, 1 ms base backoff, 250 ms restart budget, and a
    /// staleness budget of one checkpoint interval.
    #[must_use]
    pub fn new(shards: usize, dir: PathBuf) -> Self {
        ShardPlan {
            shards,
            checkpoint_every: 64,
            max_restarts: 3,
            backoff_base_ms: 1,
            restart_timeout_ms: 250,
            staleness_budget: 64,
            dir,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(UdmError::InvalidConfig("shards must be at least 1".into()));
        }
        if self.checkpoint_every == 0 {
            return Err(UdmError::InvalidConfig(
                "checkpoint_every must be at least 1".into(),
            ));
        }
        Ok(())
    }

    fn checkpoint_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard{shard}.ckpt.json"))
    }

    /// The versioned checkpoint file of one shard (`shard<i>.ckpt.json`
    /// under the plan directory; its rotated previous generation lives at
    /// the `.prev` sibling). Exposed so serving layers can audit resume
    /// positions without re-deriving the naming scheme.
    #[must_use]
    pub fn checkpoint_file(&self, shard: usize) -> PathBuf {
        self.checkpoint_path(shard)
    }

    /// True when the plan directory holds a recoverable checkpoint for at
    /// least one shard — the signal a restarting server uses to choose
    /// [`ShardSupervisor::recover`] over a cold [`ShardSupervisor::new`].
    #[must_use]
    pub fn has_checkpoints(&self) -> bool {
        (0..self.shards).any(|s| {
            let p = self.checkpoint_path(s);
            p.exists() || crate::checkpoint::prev_path(&p).exists()
        })
    }
}

/// Fault injection for the chaos drills: crash a shard worker at a
/// chosen point in its partition, optionally refusing every restart.
#[derive(Debug, Clone, Default)]
pub struct KillPlan {
    /// `(shard, partition offset)`: the worker crashes immediately
    /// before processing the `offset`-th record of its partition.
    kills: Vec<(usize, u64)>,
    /// Shards whose restart attempts always fail (a dead fault domain,
    /// not a transient crash).
    permanent: BTreeSet<usize>,
}

impl KillPlan {
    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        KillPlan::default()
    }

    /// Crash `shard` immediately before the `offset`-th record of its
    /// partition; the warm restart is allowed to succeed.
    #[must_use]
    pub fn kill_at(mut self, shard: usize, offset: u64) -> Self {
        self.kills.push((shard, offset));
        self
    }

    /// Take `shard` down for good: it crashes before its first record
    /// and every restart attempt fails.
    #[must_use]
    pub fn permanently_down(mut self, shard: usize) -> Self {
        self.kills.push((shard, 0));
        self.permanent.insert(shard);
        self
    }
}

/// Liveness of one shard worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Processing its partition.
    Live,
    /// Retries exhausted or restart budget exceeded; its partition tail
    /// is no longer applied.
    Dead,
}

/// Status of one shard in a [`ShardRunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Liveness at the end of the run.
    pub state: ShardState,
    /// Partition records offered to this shard.
    pub offered: u64,
    /// Warm restarts performed.
    pub restarts: u32,
    /// Records fast-forwarded or re-applied during restart replays.
    pub replayed: u64,
    /// Partition records not reflected in the shard's recoverable
    /// state: skipped while dead, plus any tail its last checkpoint
    /// does not cover.
    pub lag: u64,
    /// Ingest counters, where state is recoverable (live workers, or
    /// dead workers with a readable checkpoint).
    pub counters: Option<IngestCounters>,
}

/// Outcome of a supervised sharded run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRunReport {
    /// Number of fault domains.
    pub shards: usize,
    /// Records offered to the supervisor.
    pub offered: u64,
    /// Per-shard status.
    pub per_shard: Vec<ShardStatus>,
}

impl ShardRunReport {
    /// Shards still live at the end of the run.
    #[must_use]
    pub fn live_shards(&self) -> usize {
        self.per_shard
            .iter()
            .filter(|s| s.state == ShardState::Live)
            .count()
    }

    /// Total warm restarts across shards.
    #[must_use]
    pub fn total_restarts(&self) -> u32 {
        self.per_shard.iter().map(|s| s.restarts).sum()
    }

    /// Total replayed records across shards.
    #[must_use]
    pub fn total_replayed(&self) -> u64 {
        self.per_shard.iter().map(|s| s.replayed).sum()
    }

    /// Ingest counters rolled up over every shard with recoverable
    /// state.
    #[must_use]
    pub fn merged_counters(&self) -> IngestCounters {
        let mut out = IngestCounters::default();
        for s in &self.per_shard {
            if let Some(c) = &s.counters {
                out.absorb(c);
            }
        }
        out
    }
}

impl std::fmt::Display for ShardRunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} shards, {} records offered, {} live, {} restarts, {} replayed",
            self.shards,
            self.offered,
            self.live_shards(),
            self.total_restarts(),
            self.total_replayed()
        )?;
        for s in &self.per_shard {
            writeln!(
                f,
                "  shard {}: {:?}, {} offered, {} restarts, {} replayed, lag {}",
                s.shard, s.state, s.offered, s.restarts, s.replayed, s.lag
            )?;
        }
        Ok(())
    }
}

/// Per-shard metric names. The registry stores `&'static str` keys, so
/// the first eight shards get dedicated series; higher indices are
/// covered by the roll-up counters only.
static SHARD_LAG_GAUGES: [&str; 8] = [
    "udm_shard0_lag",
    "udm_shard1_lag",
    "udm_shard2_lag",
    "udm_shard3_lag",
    "udm_shard4_lag",
    "udm_shard5_lag",
    "udm_shard6_lag",
    "udm_shard7_lag",
];
static SHARD_RESTART_COUNTERS: [&str; 8] = [
    "udm_shard0_restarts_total",
    "udm_shard1_restarts_total",
    "udm_shard2_restarts_total",
    "udm_shard3_restarts_total",
    "udm_shard4_restarts_total",
    "udm_shard5_restarts_total",
    "udm_shard6_restarts_total",
    "udm_shard7_restarts_total",
];

/// One shard worker slot. At most one of `driver`/`drained` is `Some`:
/// `driver` while the worker runs, `drained` after [`ShardSupervisor::finish`].
#[derive(Debug)]
struct ShardSlot {
    driver: Option<CheckpointDriver>,
    drained: Option<ResilientIngestor>,
    state: ShardState,
    offered: u64,
    restarts: u32,
    replayed: u64,
    lag: u64,
}

/// Drives S independent [`CheckpointDriver`] workers over a partitioned
/// (possibly faulty) stream, warm-restarting crashed workers from their
/// checkpoints and serving a merged [`MicroClusterModel`] from whatever
/// survives.
#[derive(Debug)]
pub struct ShardSupervisor {
    plan: ShardPlan,
    dim: usize,
    config: MaintainerConfig,
    policy: IngestPolicy,
    slots: Vec<ShardSlot>,
    offered: u64,
}

impl ShardSupervisor {
    /// Creates a supervisor with one fresh ingest worker per shard.
    /// Checkpoint files live under `plan.dir` (created if absent) as
    /// `shard<i>.ckpt.json`; stale files from earlier runs are removed
    /// so they cannot leak into this run's replay cursors.
    ///
    /// # Errors
    ///
    /// Invalid plan, maintainer configuration or policy; checkpoint
    /// directory creation failure.
    pub fn new(
        dim: usize,
        config: MaintainerConfig,
        policy: IngestPolicy,
        plan: ShardPlan,
    ) -> Result<Self> {
        plan.validate()?;
        std::fs::create_dir_all(&plan.dir)?;
        let mut slots = Vec::with_capacity(plan.shards);
        for shard in 0..plan.shards {
            let path = plan.checkpoint_path(shard);
            std::fs::remove_file(&path).ok();
            std::fs::remove_file(prev_path(&path)).ok();
            let ingestor = ResilientIngestor::new(dim, config, policy.clone())?;
            slots.push(ShardSlot {
                driver: Some(CheckpointDriver::new(
                    ingestor,
                    path,
                    plan.checkpoint_every,
                )?),
                drained: None,
                state: ShardState::Live,
                offered: 0,
                restarts: 0,
                replayed: 0,
                lag: 0,
            });
        }
        Ok(ShardSupervisor {
            plan,
            dim,
            config,
            policy,
            slots,
            offered: 0,
        })
    }

    /// Recovers a supervisor from the per-shard checkpoints already under
    /// `plan.dir` — the warm-restart constructor a killed serving process
    /// uses to resume mid-stream. Unlike [`ShardSupervisor::new`], existing
    /// checkpoint files are *preserved* and become each shard's replay
    /// cursor: re-offering the stream from the beginning fast-forwards
    /// every record a shard has already checkpointed (`seq < next_seq`)
    /// and applies only the un-checkpointed tail, reproducing the CFT
    /// statistics of an uninterrupted run bit-for-bit. A shard with no
    /// readable checkpoint (latest and `.prev` both absent) cold-starts.
    ///
    /// # Errors
    ///
    /// Invalid plan, maintainer configuration or policy; checkpoint
    /// directory creation failure; a checkpoint file that exists but is
    /// unrecoverable in both generations (the caller decides whether a
    /// cold start is an acceptable substitute for a warm one).
    pub fn recover(
        dim: usize,
        config: MaintainerConfig,
        policy: IngestPolicy,
        plan: ShardPlan,
    ) -> Result<Self> {
        plan.validate()?;
        std::fs::create_dir_all(&plan.dir)?;
        let mut slots = Vec::with_capacity(plan.shards);
        for shard in 0..plan.shards {
            let path = plan.checkpoint_path(shard);
            let driver = if path.exists() || prev_path(&path).exists() {
                CheckpointDriver::recover(path, plan.checkpoint_every)?
            } else {
                let ingestor = ResilientIngestor::new(dim, config, policy.clone())?;
                CheckpointDriver::new(ingestor, path, plan.checkpoint_every)?
            };
            slots.push(ShardSlot {
                driver: Some(driver),
                drained: None,
                state: ShardState::Live,
                offered: 0,
                restarts: 0,
                replayed: 0,
                lag: 0,
            });
        }
        Ok(ShardSupervisor {
            plan,
            dim,
            config,
            policy,
            slots,
            offered: 0,
        })
    }

    /// The plan in force.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Per-shard replay cursors: the next stream `seq` each worker
    /// expects. After [`ShardSupervisor::recover`] these are the
    /// checkpointed resume positions; a dead or drained worker reports
    /// its last known cursor from disk (0 when none is recoverable).
    #[must_use]
    pub fn next_seqs(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .map(|(shard, slot)| match &slot.driver {
                Some(driver) => driver.next_seq(),
                None => load_checkpoint_with_fallback(&self.plan.checkpoint_path(shard))
                    .map(|p| p.next_seq)
                    .unwrap_or(0),
            })
            .collect()
    }

    /// The shard owning a stream position.
    #[must_use]
    pub fn shard_of(&self, seq: u64) -> usize {
        usize::try_from(seq % self.plan.shards as u64).unwrap_or(0)
    }

    /// Processes a batch of records, injecting the faults described by
    /// `kills`. Workers are driven in stream order; each crash triggers
    /// the bounded retry/backoff/timeout restart protocol before the
    /// offending record is offered.
    ///
    /// # Errors
    ///
    /// Ingest invariant violations or checkpoint I/O failures on live
    /// shards. Crash *recovery* failures are not errors — they demote
    /// the shard to [`ShardState::Dead`].
    pub fn run(&mut self, records: &[RawRecord], kills: &KillPlan) -> Result<()> {
        let mut pending: Vec<(usize, u64)> = kills.kills.clone();
        for (idx, rec) in records.iter().enumerate() {
            let shard = self.shard_of(rec.seq);
            if let Some(at) = pending
                .iter()
                .position(|&(s, off)| s == shard && off == self.slots[shard].offered)
            {
                pending.remove(at);
                self.crash(shard);
                self.restart(shard, records, idx, kills.permanent.contains(&shard));
            }
            self.offered += 1;
            let slot = &mut self.slots[shard];
            slot.offered += 1;
            match slot.driver.as_mut() {
                Some(driver) => {
                    driver.observe(rec)?;
                }
                None => {
                    // Dead shard: its partition tail falls behind.
                    slot.lag += 1;
                    if udm_observe::enabled() {
                        if let Some(name) = SHARD_LAG_GAUGES.get(shard) {
                            udm_observe::global()
                                .gauge(name)
                                .set(f64_from_count(slot.lag));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Simulated worker crash: the in-memory driver (and everything
    /// since its last checkpoint) is lost.
    fn crash(&mut self, shard: usize) {
        self.slots[shard].driver = None;
        udm_observe::counter_inc!("udm_shard_crashes_total");
    }

    /// The bounded restart protocol: up to `max_restarts` attempts with
    /// exponential backoff, all within the cumulative
    /// `restart_timeout_ms` budget. A successful attempt recovers the
    /// checkpoint (previous generation on fallback) and replays the
    /// partition tail from `records[..upto]`; failure demotes the shard
    /// to [`ShardState::Dead`].
    fn restart(&mut self, shard: usize, records: &[RawRecord], upto: usize, permanent: bool) {
        let started = Instant::now();
        let path = self.plan.checkpoint_path(shard);
        for attempt in 0..=self.plan.max_restarts {
            if attempt > 0 {
                let factor = 1u64.checked_shl(attempt - 1).unwrap_or(u64::MAX);
                let wait = self.plan.backoff_base_ms.saturating_mul(factor);
                std::thread::sleep(Duration::from_millis(wait));
            }
            let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            if elapsed_ms > self.plan.restart_timeout_ms {
                break;
            }
            let recovered = if permanent {
                // A permanently failed fault domain: its storage (and
                // therefore its checkpoint) is unreachable.
                None
            } else if path.exists() || prev_path(&path).exists() {
                CheckpointDriver::recover(path.clone(), self.plan.checkpoint_every).ok()
            } else {
                // Crashed before the first checkpoint: a cold start is
                // the correct warm restart.
                ResilientIngestor::new(self.dim, self.config, self.policy.clone())
                    .and_then(|ing| {
                        CheckpointDriver::new(ing, path.clone(), self.plan.checkpoint_every)
                    })
                    .ok()
            };
            if let Some(mut driver) = recovered {
                let mut replayed = 0u64;
                let replay_ok = self
                    .partition(records, upto, shard)
                    .try_for_each(|r| {
                        if driver.observe(r)?.is_some() {
                            replayed += 1;
                        }
                        Ok::<(), UdmError>(())
                    })
                    .is_ok();
                if replay_ok {
                    let slot = &mut self.slots[shard];
                    slot.driver = Some(driver);
                    slot.state = ShardState::Live;
                    slot.restarts += 1;
                    slot.replayed += replayed;
                    slot.lag = 0;
                    if udm_observe::enabled() {
                        udm_observe::counter_inc!("udm_shard_restarts_total");
                        if let Some(name) = SHARD_RESTART_COUNTERS.get(shard) {
                            udm_observe::global().counter(name).inc();
                        }
                        if let Some(name) = SHARD_LAG_GAUGES.get(shard) {
                            udm_observe::global().gauge(name).set(0.0);
                        }
                    }
                    return;
                }
            }
        }
        // Retries exhausted or budget blown: a dead fault domain. Its
        // lag starts at the partition records its last recoverable
        // checkpoint does not cover.
        let covered = load_checkpoint_with_fallback(&path)
            .map(|payload| {
                let n = self
                    .partition(records, upto, shard)
                    .filter(|r| r.seq < payload.next_seq)
                    .count();
                u64::try_from(n).unwrap_or(u64::MAX)
            })
            .unwrap_or(0);
        let slot = &mut self.slots[shard];
        slot.state = ShardState::Dead;
        slot.driver = None;
        slot.lag = slot.offered.saturating_sub(covered);
        udm_observe::counter_inc!("udm_shard_deaths_total");
    }

    /// This shard's partition of `records[..upto]`.
    fn partition<'a>(
        &self,
        records: &'a [RawRecord],
        upto: usize,
        shard: usize,
    ) -> impl Iterator<Item = &'a RawRecord> {
        let shards = self.plan.shards as u64;
        let shard = shard as u64;
        records[..upto]
            .iter()
            .filter(move |r| r.seq % shards == shard)
    }

    /// Serves the merged model from every shard whose state is current
    /// enough: live shards always contribute; a dead shard contributes
    /// its last checkpoint when its lag is within the staleness budget.
    /// Returns the model and the coverage fraction (`contributing / S`).
    ///
    /// # Errors
    ///
    /// Model merge dimension mismatches (an invariant violation).
    pub fn serve(&self) -> Result<(MicroClusterModel, f64)> {
        let started = Instant::now();
        let mut model = MicroClusterModel::empty(self.dim);
        let mut contributing = 0usize;
        for (shard, slot) in self.slots.iter().enumerate() {
            let partial = if let Some(driver) = &slot.driver {
                Some(MicroClusterModel::from_maintainer(
                    driver.ingestor().maintainer(),
                ))
            } else if let Some(ingestor) = &slot.drained {
                Some(MicroClusterModel::from_maintainer(ingestor.maintainer()))
            } else if slot.state == ShardState::Dead && slot.lag <= self.plan.staleness_budget {
                load_checkpoint_with_fallback(&self.plan.checkpoint_path(shard))
                    .ok()
                    .and_then(|payload| payload.restore().ok())
                    .map(|ing| MicroClusterModel::from_maintainer(ing.maintainer()))
            } else {
                None
            };
            if let Some(partial) = partial {
                model.merge(&partial)?;
                contributing += 1;
            }
        }
        let coverage = f64_from_usize(contributing) / f64_from_usize(self.plan.shards);
        if udm_observe::enabled() {
            udm_observe::gauge_set!("udm_shard_coverage", coverage);
            udm_observe::histogram_observe!(
                "udm_shard_merge_seconds",
                started.elapsed().as_secs_f64()
            );
        }
        Ok((model, coverage))
    }

    /// Per-shard status and counters.
    #[must_use]
    pub fn report(&self) -> ShardRunReport {
        let per_shard = self
            .slots
            .iter()
            .enumerate()
            .map(|(shard, slot)| ShardStatus {
                shard,
                state: slot.state,
                offered: slot.offered,
                restarts: slot.restarts,
                replayed: slot.replayed,
                lag: slot.lag,
                counters: if let Some(driver) = &slot.driver {
                    Some(*driver.ingestor().counters())
                } else if let Some(ingestor) = &slot.drained {
                    Some(*ingestor.counters())
                } else {
                    load_checkpoint_with_fallback(&self.plan.checkpoint_path(shard))
                        .ok()
                        .map(|p| p.counters)
                },
            })
            .collect();
        ShardRunReport {
            shards: self.plan.shards,
            offered: self.offered,
            per_shard,
        }
    }

    /// Finishes the run: every live worker drains its quarantine and
    /// writes a final checkpoint, then the merged model is served under
    /// the usual staleness rule. Returns the model, its coverage
    /// fraction, and the final report.
    ///
    /// # Errors
    ///
    /// Quarantine drain or final checkpoint failures on live shards.
    pub fn finish(mut self) -> Result<(MicroClusterModel, f64, ShardRunReport)> {
        for slot in &mut self.slots {
            if let Some(driver) = slot.driver.take() {
                let (_, ingestor) = driver.finish()?;
                slot.drained = Some(ingestor);
            }
        }
        let report = self.report();
        let (model, coverage) = self.serve()?;
        Ok((model, coverage, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::UncertainPoint;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("udm_shard_test").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(seq: u64, v: f64) -> RawRecord {
        RawRecord {
            seq,
            timestamp: seq,
            values: vec![v, v * 0.25 + 1.0],
            errors: vec![0.1, 0.2],
            label: None,
        }
    }

    fn stream(n: u64) -> Vec<RawRecord> {
        (0..n).map(|i| rec(i, (i % 17) as f64 + 0.5)).collect()
    }

    fn plan(name: &str, shards: usize) -> ShardPlan {
        ShardPlan {
            checkpoint_every: 16,
            backoff_base_ms: 0,
            staleness_budget: 8,
            ..ShardPlan::new(shards, test_dir(name))
        }
    }

    fn supervisor(name: &str, shards: usize) -> ShardSupervisor {
        ShardSupervisor::new(
            2,
            MaintainerConfig::new(6),
            IngestPolicy::default(),
            plan(name, shards),
        )
        .unwrap()
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 3)), 3);
        assert_eq!(
            ulp_distance(-1.0, f64::from_bits((-1.0f64).to_bits() + 2)),
            2
        );
        assert!(ulp_distance(-1e-300, 1e-300) > 0);
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
    }

    #[test]
    fn model_merge_is_order_invariant_and_dim_checked() {
        let p = |v: f64| UncertainPoint::new(vec![v, v + 1.0], vec![0.1, 0.1]).unwrap();
        let mut a = MicroCluster::new(2);
        a.insert(&p(1.0)).unwrap();
        let mut b = MicroCluster::new(2);
        b.insert(&p(2.0)).unwrap();
        b.insert(&p(3.0)).unwrap();
        let ma = MicroClusterModel::from_clusters(2, vec![a.clone()]).unwrap();
        let mb = MicroClusterModel::from_clusters(2, vec![b.clone()]).unwrap();
        let mut ab = ma.clone();
        ab.merge(&mb).unwrap();
        let mut ba = mb.clone();
        ba.merge(&ma).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.aggregate(), ba.aggregate());
        assert_eq!(ab.total_points(), 3);
        let mut wrong = MicroClusterModel::empty(3);
        assert!(wrong.merge(&ma).is_err());
    }

    #[test]
    fn no_fault_sharded_run_conserves_the_stream() {
        let records = stream(200);
        let mut sup = supervisor("no_fault", 4);
        sup.run(&records, &KillPlan::none()).unwrap();
        let (model, coverage) = sup.serve().unwrap();
        assert_eq!(coverage, 1.0);
        assert_eq!(model.total_points(), 200);
        let report = sup.report();
        assert_eq!(report.live_shards(), 4);
        assert_eq!(report.merged_counters().arrivals, 200);
        assert_eq!(report.total_restarts(), 0);
    }

    #[test]
    fn kill_and_warm_restart_is_bit_identical_to_no_fault() {
        let records = stream(240);
        let mut clean = supervisor("bitid_clean", 3);
        clean.run(&records, &KillPlan::none()).unwrap();
        let (clean_model, _, clean_report) = clean.finish().unwrap();

        let mut faulty = supervisor("bitid_faulty", 3);
        let kills = KillPlan::none().kill_at(1, 30).kill_at(2, 51);
        faulty.run(&records, &kills).unwrap();
        let (faulty_model, coverage, report) = faulty.finish().unwrap();

        assert_eq!(coverage, 1.0);
        assert_eq!(report.total_restarts(), 2);
        assert!(report.total_replayed() > 0, "{report}");
        // The tentpole property: bit-identical clusters and aggregates.
        assert_eq!(faulty_model, clean_model);
        assert_eq!(faulty_model.aggregate(), clean_model.aggregate());
        assert_eq!(report.merged_counters(), clean_report.merged_counters());
    }

    #[test]
    fn permanently_down_shard_degrades_coverage() {
        let records = stream(300);
        let mut sup = supervisor("perma_down", 4);
        sup.run(&records, &KillPlan::none().permanently_down(2))
            .unwrap();
        let report = sup.report();
        assert_eq!(report.per_shard[2].state, ShardState::Dead);
        assert!(report.per_shard[2].lag > sup.plan().staleness_budget);
        let (model, coverage) = sup.serve().unwrap();
        assert_eq!(coverage, 0.75);
        // The dead shard died before processing anything, so the served
        // model holds exactly the other shards' partitions.
        assert_eq!(model.total_points(), 300 - report.per_shard[2].offered);
    }

    #[test]
    fn dead_shard_within_staleness_budget_serves_its_checkpoint() {
        let records = stream(200);
        let mut sup = supervisor("stale_ok", 2);
        // Kill shard 1 near the end of its partition with every restart
        // refused: its last checkpoint (cadence 16 over a 100-record
        // partition, killed at offset 98) misses only a few records, so
        // the dead shard still serves within the staleness budget.
        let kills = KillPlan {
            kills: vec![(1, 98)],
            permanent: [1usize].into_iter().collect(),
        };
        sup.run(&records, &kills).unwrap();
        let report = sup.report();
        assert_eq!(report.per_shard[1].state, ShardState::Dead);
        assert!(
            report.per_shard[1].lag <= sup.plan().staleness_budget,
            "{report}"
        );
        let (model, coverage) = sup.serve().unwrap();
        assert_eq!(coverage, 1.0);
        // The checkpointed partial misses only the un-checkpointed tail.
        assert!(model.total_points() >= 200 - report.per_shard[1].lag);
    }

    #[test]
    fn recover_resumes_from_checkpoints_bit_identically() {
        let records = stream(200);
        // Reference: one uninterrupted run.
        let mut clean = supervisor("recover_clean", 3);
        clean.run(&records, &KillPlan::none()).unwrap();
        let (clean_model, _, clean_report) = clean.finish().unwrap();

        // Process killed mid-stream: everything since the last checkpoint
        // is lost, only the checkpoint files survive.
        let mut first = supervisor("recover_warm", 3);
        first.run(&records[..130], &KillPlan::none()).unwrap();
        drop(first); // no finish(): in-memory state is abandoned

        let p = plan("recover_warm", 3);
        assert!(p.has_checkpoints());
        let mut resumed =
            ShardSupervisor::recover(2, MaintainerConfig::new(6), IngestPolicy::default(), p)
                .unwrap();
        let cursors = resumed.next_seqs();
        assert!(
            cursors.iter().any(|&s| s > 0),
            "expected checkpointed resume positions, got {cursors:?}"
        );
        // Replay-aware drivers: re-offering the whole stream fast-forwards
        // the checkpointed prefix and applies only the tail.
        resumed.run(&records, &KillPlan::none()).unwrap();
        let (model, coverage, report) = resumed.finish().unwrap();
        assert_eq!(coverage, 1.0);
        assert_eq!(model, clean_model);
        assert_eq!(model.aggregate(), clean_model.aggregate());
        assert_eq!(report.merged_counters(), clean_report.merged_counters());
    }

    #[test]
    fn recover_without_checkpoints_is_a_cold_start() {
        let p = plan("recover_cold", 2);
        for s in 0..2 {
            std::fs::remove_file(p.checkpoint_file(s)).ok();
            std::fs::remove_file(crate::checkpoint::prev_path(&p.checkpoint_file(s))).ok();
        }
        assert!(!p.has_checkpoints());
        let mut sup =
            ShardSupervisor::recover(2, MaintainerConfig::new(6), IngestPolicy::default(), p)
                .unwrap();
        assert_eq!(sup.next_seqs(), vec![0, 0]);
        let records = stream(60);
        sup.run(&records, &KillPlan::none()).unwrap();
        let (model, coverage, _) = sup.finish().unwrap();
        assert_eq!(coverage, 1.0);
        assert_eq!(model.total_points(), 60);
    }

    #[test]
    fn zero_shards_rejected() {
        let e = ShardSupervisor::new(
            2,
            MaintainerConfig::new(4),
            IngestPolicy::default(),
            plan("zero", 0),
        );
        assert!(e.is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn records_from(rows: &[(f64, f64)]) -> Vec<RawRecord> {
        rows.iter()
            .enumerate()
            .map(|(i, &(v, e))| RawRecord {
                seq: i as u64,
                timestamp: i as u64,
                values: vec![v, v * 0.5 + 3.0],
                errors: vec![e, e * 0.5],
                label: None,
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // The tentpole invariant: random partitions into S shards and a
        // random merge order produce a model bit-identical to the
        // identity merge order, and its aggregate conserves the
        // single-stream sums within the documented ulp budget.
        //
        // Values are kept positive so the cross-ingest comparison is
        // well-conditioned (no cancellation inflating ulp distances).
        #[test]
        fn merge_order_invariance_against_single_stream(
            rows in proptest::collection::vec((0.5f64..100.0, 0.0f64..10.0), 20..120),
            shards in 2usize..5,
            perm_seed in 0u64..1000,
        ) {
            let records = records_from(&rows);
            // Per-shard ingest through plain maintainers (the model
            // layer; supervisor plumbing is exercised elsewhere).
            let mut partials = Vec::new();
            for s in 0..shards {
                let mut ing = ResilientIngestor::new(
                    2,
                    MaintainerConfig::new(4),
                    IngestPolicy::default(),
                ).unwrap();
                for r in records.iter().filter(|r| r.seq % shards as u64 == s as u64) {
                    ing.observe(r).unwrap();
                }
                partials.push(MicroClusterModel::from_maintainer(ing.maintainer()));
            }
            // Identity merge order.
            let mut forward = MicroClusterModel::empty(2);
            for p in &partials {
                forward.merge(p).unwrap();
            }
            // A deterministic pseudo-random permutation of the partials.
            let mut order: Vec<usize> = (0..shards).collect();
            let mut state = perm_seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            for i in (1..order.len()).rev() {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            let mut shuffled = MicroClusterModel::empty(2);
            for &i in &order {
                shuffled.merge(&partials[i]).unwrap();
            }
            // Bit-identical across merge orders.
            prop_assert_eq!(&shuffled, &forward);
            prop_assert_eq!(shuffled.aggregate(), forward.aggregate());

            // Conservation against bulk single-stream ingest: counts
            // exact, float sums within the ulp budget.
            let mut single = ResilientIngestor::new(
                2,
                MaintainerConfig::new(4),
                IngestPolicy::default(),
            ).unwrap();
            for r in &records {
                single.observe(r).unwrap();
            }
            let bulk = MicroClusterModel::from_maintainer(single.maintainer()).aggregate();
            let merged = forward.aggregate();
            prop_assert_eq!(merged.n, bulk.n);
            prop_assert_eq!(merged.last_timestamp, bulk.last_timestamp);
            let ulps = merged.max_ulps(&bulk).unwrap();
            prop_assert!(
                ulps <= AGGREGATE_ULP_BOUND,
                "aggregate drift {} ulps exceeds budget {}",
                ulps,
                AGGREGATE_ULP_BOUND
            );
        }

        // Merging is associative bit-for-bit: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        #[test]
        fn merge_is_associative(
            rows in proptest::collection::vec((0.5f64..50.0, 0.0f64..5.0), 9..60),
        ) {
            let records = records_from(&rows);
            let thirds: Vec<MicroClusterModel> = (0..3).map(|s| {
                let mut ing = ResilientIngestor::new(
                    2,
                    MaintainerConfig::new(3),
                    IngestPolicy::default(),
                ).unwrap();
                for r in records.iter().filter(|r| r.seq % 3 == s) {
                    ing.observe(r).unwrap();
                }
                MicroClusterModel::from_maintainer(ing.maintainer())
            }).collect();
            let mut left = thirds[0].clone();
            left.merge(&thirds[1]).unwrap();
            left.merge(&thirds[2]).unwrap();
            let mut right_tail = thirds[1].clone();
            right_tail.merge(&thirds[2]).unwrap();
            let mut right = thirds[0].clone();
            right.merge(&right_tail).unwrap();
            prop_assert_eq!(&left, &right);
            prop_assert_eq!(left.aggregate(), right.aggregate());
        }
    }
}
