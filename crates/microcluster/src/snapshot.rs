//! JSON persistence for micro-cluster state.
//!
//! Micro-cluster summaries are the durable artifact of the training pass
//! (§3 computes them once as a pre-processing step); snapshots let a
//! long-running service restart without replaying the stream.

use crate::feature::MicroCluster;
use crate::maintainer::{MaintainerConfig, MicroClusterMaintainer};
use serde::{Deserialize, Serialize};
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use udm_core::{Result, UdmError};

/// Serializable snapshot of a maintainer: config + cluster statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Maintainer configuration at snapshot time.
    pub config: MaintainerConfig,
    /// The micro-cluster sufficient statistics.
    pub clusters: Vec<MicroCluster>,
}

impl Snapshot {
    /// Captures the state of a maintainer.
    pub fn capture(maintainer: &MicroClusterMaintainer) -> Self {
        Snapshot {
            config: *maintainer.config(),
            clusters: maintainer.clusters().to_vec(),
        }
    }

    /// Restores a maintainer from the snapshot.
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] when the cluster set is not
    /// dimensionally uniform (checked up front, against the first
    /// cluster's dimensionality, rather than deferred to the first
    /// divergence `from_clusters` happens to hit); otherwise as
    /// [`MicroClusterMaintainer::from_clusters`].
    pub fn restore(self) -> Result<MicroClusterMaintainer> {
        if let Some(first) = self.clusters.first() {
            let expected = first.dim();
            for c in &self.clusters {
                if c.dim() != expected {
                    return Err(UdmError::DimensionMismatch {
                        expected,
                        actual: c.dim(),
                    });
                }
            }
        }
        MicroClusterMaintainer::from_clusters(self.clusters, self.config)
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    ///
    /// [`UdmError::Serde`] on encoding failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| UdmError::Serde(e.to_string()))
    }

    /// Deserializes from a JSON string.
    ///
    /// # Errors
    ///
    /// [`UdmError::Serde`] on malformed or mistyped JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| UdmError::Serde(e.to_string()))
    }

    /// Writes the snapshot to a file as JSON.
    ///
    /// # Errors
    ///
    /// [`UdmError::Serde`] on encoding failure, [`UdmError::Io`] on
    /// filesystem failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        serde_json::to_writer(&mut w, self).map_err(|e| UdmError::Serde(e.to_string()))?;
        w.flush()?;
        Ok(())
    }

    /// Reads a snapshot from a JSON file.
    ///
    /// # Errors
    ///
    /// [`UdmError::Serde`] on malformed content, [`UdmError::Io`] when
    /// the file cannot be read.
    pub fn load(path: &Path) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        let r = BufReader::new(file);
        serde_json::from_reader(r).map_err(|e| UdmError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::UncertainPoint;

    fn trained_maintainer() -> MicroClusterMaintainer {
        let mut m = MicroClusterMaintainer::new(2, MaintainerConfig::new(4)).unwrap();
        for i in 0..100 {
            let p = UncertainPoint::new(
                vec![(i % 10) as f64, (i % 7) as f64],
                vec![0.1, 0.2 * (i % 3) as f64],
            )
            .unwrap();
            m.insert(&p).unwrap();
        }
        m
    }

    #[test]
    fn json_roundtrip_preserves_state() {
        let m = trained_maintainer();
        let snap = Snapshot::capture(&m);
        let json = snap.to_json().unwrap();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        let restored = back.restore().unwrap();
        assert_eq!(restored.points_seen(), m.points_seen());
        assert_eq!(restored.num_clusters(), m.num_clusters());
        // Behavioural equivalence: same assignments for fresh points.
        for i in 0..20 {
            let p = UncertainPoint::new(vec![i as f64 * 0.37, i as f64 * 0.11], vec![0.0, 0.0])
                .unwrap();
            assert_eq!(restored.nearest(&p), m.nearest(&p));
        }
    }

    #[test]
    fn file_roundtrip() {
        let m = trained_maintainer();
        let snap = Snapshot::capture(&m);
        let dir = std::env::temp_dir().join("udm_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        snap.save(&path).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_a_serde_error() {
        let e = Snapshot::from_json("{not json").unwrap_err();
        assert!(matches!(e, UdmError::Serde(_)), "{e:?}");
    }

    #[test]
    fn restore_rejects_mixed_dimensions_directly() {
        use udm_core::UncertainPoint;
        let c2 =
            MicroCluster::from_point(&UncertainPoint::new(vec![0.0, 1.0], vec![0.0, 0.0]).unwrap());
        let c3 = MicroCluster::from_point(
            &UncertainPoint::new(vec![0.0, 1.0, 2.0], vec![0.0, 0.0, 0.0]).unwrap(),
        );
        let snap = Snapshot {
            config: MaintainerConfig::new(4),
            clusters: vec![c2, c3],
        };
        let e = snap.restore().unwrap_err();
        assert_eq!(
            e,
            UdmError::DimensionMismatch {
                expected: 2,
                actual: 3
            }
        );
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = Snapshot::load(Path::new("/nonexistent/udm/state.json")).unwrap_err();
        assert!(matches!(e, UdmError::Io(_)));
    }
}
