//! Randomized cross-backend contracts (satellite proptests for the
//! pluggable-backend refactor):
//!
//! 1. the `Exact` backend answers **bit-identically** to the inherent
//!    `MicroClusterKde` entry points it wraps, over random models,
//!    random queries, random query errors, and random subspaces;
//! 2. a `CoresetKde` never deviates from the exact density by more than
//!    its own `certified_error()` bound, and that bound respects the
//!    requested `eps` times the model's peak density bound;
//! 3. the `Hbe` backend is deterministic: the same (model, query,
//!    subspace) pair always reproduces the same bits.
//!
//! The generator is a hand-rolled xorshift so every case is replayable
//! from the printed seed — no external property-testing dependency.

use std::sync::Arc;
use udm_core::{Subspace, UncertainPoint};
use udm_kde::{BackendSpec, DensityBackend, KdeConfig};
use udm_microcluster::{
    build_backend, CoresetKde, MaintainerConfig, MicroClusterKde, MicroClusterMaintainer,
};

/// xorshift64* — deterministic, seed-replayable case generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        // 53 mantissa bits of the raw stream.
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [lo, hi).
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn below(&mut self, n: usize) -> usize {
        // n is tiny (dims/choices), so modulo bias is irrelevant here.
        (self.next() % n as u64) as usize
    }
}

/// Fits a random micro-cluster KDE: `n` clustered points in `dim`
/// dimensions with random per-dimension errors, compressed to `q`
/// pseudo-points.
fn random_model(rng: &mut Rng, dim: usize, n: usize, q: usize) -> MicroClusterKde {
    let mut maintainer = MicroClusterMaintainer::new(dim, MaintainerConfig::new(q)).unwrap();
    let modes = 2 + rng.below(3);
    let centers: Vec<Vec<f64>> = (0..modes)
        .map(|_| (0..dim).map(|_| rng.range(-4.0, 4.0)).collect())
        .collect();
    for t in 0..n {
        let c = &centers[rng.below(modes)];
        let values: Vec<f64> = c.iter().map(|&m| m + rng.range(-1.0, 1.0)).collect();
        let errors: Vec<f64> = (0..dim).map(|_| rng.range(0.0, 0.5)).collect();
        let p = UncertainPoint::new(values, errors)
            .unwrap()
            .with_timestamp(t as u64);
        maintainer.insert(&p).unwrap();
    }
    MicroClusterKde::fit(maintainer.clusters(), KdeConfig::error_adjusted()).unwrap()
}

/// A random non-empty subspace of `dim` dimensions.
fn random_subspace(rng: &mut Rng, dim: usize) -> Subspace {
    loop {
        let dims: Vec<usize> = (0..dim).filter(|_| rng.unit() < 0.5).collect();
        if !dims.is_empty() {
            return Subspace::from_dims(&dims).unwrap();
        }
    }
}

fn random_query(rng: &mut Rng, dim: usize) -> (Vec<f64>, Option<Vec<f64>>) {
    let x: Vec<f64> = (0..dim).map(|_| rng.range(-5.0, 5.0)).collect();
    let errors = if rng.unit() < 0.5 {
        Some((0..dim).map(|_| rng.range(0.0, 0.4)).collect())
    } else {
        None
    };
    (x, errors)
}

#[test]
fn exact_backend_is_bit_identical_on_random_models() {
    for case in 0..12u64 {
        let seed = 0xA11C_E000 + case;
        let mut rng = Rng::new(seed);
        let dim = 1 + rng.below(4);
        let n = 40 + rng.below(160);
        let q = 8 + rng.below(24);
        let kde = random_model(&mut rng, dim, n, q);
        let backend = build_backend(&kde, &BackendSpec::Exact).unwrap();
        assert_eq!(backend.name(), "exact", "case seed {seed}");
        for _ in 0..16 {
            let (x, errors) = random_query(&mut rng, dim);
            let sub = random_subspace(&mut rng, dim);

            let want_full = kde.density(&x).unwrap();
            let got_full = backend.density(&x).unwrap();
            assert_eq!(
                got_full.to_bits(),
                want_full.to_bits(),
                "full-space density diverged, case seed {seed}"
            );

            let want = kde
                .density_subspace_with_error(&x, errors.as_deref(), sub)
                .unwrap();
            let got = backend
                .density_subspace(&x, errors.as_deref(), sub)
                .unwrap();
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "subspace density diverged, case seed {seed}"
            );

            // The batch entry and the columnar cache agree bit-for-bit
            // with the scalar entry points.
            let many = backend
                .density_subspaces(&x, errors.as_deref(), &[sub])
                .unwrap();
            assert_eq!(many.len(), 1);
            assert_eq!(many[0].to_bits(), want.to_bits(), "case seed {seed}");
            let cols = backend
                .kernel_columns(&x, errors.as_deref())
                .unwrap()
                .expect("exact backend factorizes");
            assert_eq!(
                cols.density(sub).unwrap().to_bits(),
                want.to_bits(),
                "columnar density diverged, case seed {seed}"
            );
        }
    }
}

#[test]
fn coreset_respects_its_certified_error_on_random_models() {
    for case in 0..10u64 {
        let seed = 0xC0DE_5E70 + case;
        let mut rng = Rng::new(seed);
        let dim = 1 + rng.below(3);
        let n = 60 + rng.below(200);
        let q = 16 + rng.below(32);
        let kde = random_model(&mut rng, dim, n, q);
        let eps = rng.range(0.01, 0.3);
        let coreset = CoresetKde::build(&kde, eps).unwrap();
        assert!(
            coreset.rows() <= coreset.source_rows(),
            "compression grew the model, case seed {seed}"
        );
        let budget = coreset.certified_error();
        assert!(
            budget <= eps * coreset.peak_density_bound() + 1e-12,
            "certified error {budget} above eps budget, case seed {seed}"
        );
        for _ in 0..24 {
            let (x, _) = random_query(&mut rng, dim);
            let exact = kde.density(&x).unwrap();
            let approx = coreset.density(&x).unwrap();
            // Absolute L∞ guarantee plus float slack from the bound
            // arithmetic itself.
            let slack = budget + 1e-9 * (1.0 + exact.abs());
            assert!(
                (approx - exact).abs() <= slack,
                "|{approx} - {exact}| > {slack} (eps {eps}), case seed {seed}"
            );
        }
    }
}

#[test]
fn approximate_backends_are_deterministic_across_rebuilds() {
    for case in 0..4u64 {
        let seed = 0xDE7E_3713 + case;
        let mut rng = Rng::new(seed);
        let dim = 1 + rng.below(3);
        let kde = random_model(&mut rng, dim, 120, 24);
        let specs = [
            BackendSpec::Coreset { eps: 0.1 },
            BackendSpec::Hbe {
                eps: 0.25,
                tau: 0.02,
            },
        ];
        for spec in specs {
            let a: Arc<dyn DensityBackend> = build_backend(&kde, &spec).unwrap();
            let b: Arc<dyn DensityBackend> = build_backend(&kde, &spec).unwrap();
            for _ in 0..12 {
                let (x, errors) = random_query(&mut rng, dim);
                let sub = random_subspace(&mut rng, dim);
                let first = a.density_subspace(&x, errors.as_deref(), sub).unwrap();
                let again = a.density_subspace(&x, errors.as_deref(), sub).unwrap();
                let rebuilt = b.density_subspace(&x, errors.as_deref(), sub).unwrap();
                assert_eq!(
                    first.to_bits(),
                    again.to_bits(),
                    "{spec} not stable across repeat queries, case seed {seed}"
                );
                assert_eq!(
                    first.to_bits(),
                    rebuilt.to_bits(),
                    "{spec} not stable across rebuilds, case seed {seed}"
                );
            }
        }
    }
}
