//! Satellite property tests for the columnar kernel hot path.
//!
//! Two contracts, checked in both feature builds:
//!
//! 1. **Bit-exact caching**: the SoA column cache evaluates every
//!    subspace bit-for-bit identically to the naive row-wise density
//!    loop — under the default build *and* under `fast-math` (both
//!    paths route their exponential through `hot_exp`, so the contract
//!    is exp-agnostic).
//! 2. **Bounded drift**: against an independently computed `f64::exp`
//!    reference (rebuilt by hand from the public pseudo-point
//!    statistics), the density is float-noise exact by default and
//!    within the documented `fast_exp` budget under `fast-math`.

use proptest::prelude::*;
use udm_core::num::f64_from_count;
use udm_core::{Subspace, UncertainDataset, UncertainPoint};
use udm_kde::{ErrorKernelForm, KdeConfig};
use udm_microcluster::{MaintainerConfig, MicroClusterKde, MicroClusterMaintainer, PseudoPoint};

const MAX_DIM: usize = 4;

/// (dataset, query point, query errors) of one consistent dimension.
fn case() -> impl Strategy<Value = (UncertainDataset, Vec<f64>, Vec<f64>)> {
    (1usize..=MAX_DIM).prop_flat_map(|dim| {
        let point = (
            collection::vec(-25.0f64..25.0, dim),
            collection::vec(0.0f64..3.0, dim),
        )
            .prop_map(|(vals, errs)| UncertainPoint::new(vals, errs).unwrap());
        (
            collection::vec(point, 3..40)
                .prop_map(|pts| UncertainDataset::from_points(pts).unwrap()),
            collection::vec(-30.0f64..30.0, dim),
            collection::vec(0.0f64..4.0, dim),
        )
    })
}

fn fit(d: &UncertainDataset, max_clusters: usize) -> MicroClusterKde {
    let m = MicroClusterMaintainer::from_dataset(d, MaintainerConfig::new(max_clusters)).unwrap();
    MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Contract 1a: columnar cache == naive loop, bitwise, every subspace.
    #[test]
    fn cached_density_is_bit_identical_to_naive((d, x, _e) in case()) {
        let mc = fit(&d, 6);
        let cols = mc.kernel_columns(&x, None).unwrap();
        for bits in 1u64..(1u64 << d.dim()) {
            let s = Subspace::from_bits(bits);
            let naive = mc.density_subspace(&x, s).unwrap();
            let cached = cols.density(s).unwrap();
            prop_assert!(
                naive.to_bits() == cached.to_bits(),
                "subspace {:#b}: naive {} vs cached {}", bits, naive, cached
            );
        }
    }

    // Contract 1b: same, with query-error convolution (the per-query-ψ
    // path that cannot precompute kernel factors).
    #[test]
    fn cached_density_with_query_errors_is_bit_identical((d, x, e) in case()) {
        let mc = fit(&d, 5);
        let cols = mc.kernel_columns(&x, Some(&e)).unwrap();
        for bits in 1u64..(1u64 << d.dim()) {
            let s = Subspace::from_bits(bits);
            let naive = mc.density_subspace_with_error(&x, Some(&e), s).unwrap();
            let cached = cols.density(s).unwrap();
            prop_assert!(
                naive.to_bits() == cached.to_bits(),
                "subspace {:#b}", bits
            );
        }
    }

    // Contract 1c: the columnar builder matches the scalar reference
    // builder bitwise (cache-to-cache, not just density-to-density).
    #[test]
    fn columnar_builder_matches_scalar_builder((d, x, e) in case()) {
        let mc = fit(&d, 6);
        for errs in [None, Some(e.as_slice())] {
            let fast = mc.kernel_columns(&x, errs).unwrap();
            let reference = mc.kernel_columns_scalar(&x, errs).unwrap();
            for bits in 1u64..(1u64 << d.dim()) {
                let s = Subspace::from_bits(bits);
                prop_assert!(
                    fast.density(s).unwrap().to_bits()
                        == reference.density(s).unwrap().to_bits(),
                    "subspace {:#b} errs {:?}", bits, errs
                );
            }
        }
    }

    // Contract 2: drift against an independent f64::exp reference. The
    // reference recomputes Eq. 10 from scratch out of the public
    // pseudo-point statistics with libm exp — it shares no kernel code
    // with the estimator.
    #[test]
    fn density_within_budget_of_std_exp_reference((d, x, _e) in case()) {
        prop_assume!(d.dim() == 1);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(6)).unwrap();
        let h = 0.8;
        let mc = MicroClusterKde::fit_with_bandwidths(
            m.clusters(), vec![h], ErrorKernelForm::Normalized, true,
        ).unwrap();
        let got = mc.density(&[x[0]]).unwrap();

        let pseudos: Vec<PseudoPoint> = m
            .clusters()
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| PseudoPoint::from_cluster(c, true).unwrap())
            .collect();
        let inv_sqrt_2pi = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        let mut sum = 0.0;
        let mut n_total = 0.0;
        for p in &pseudos {
            let w = f64_from_count(p.weight);
            n_total += w;
            let var = h * h + p.delta[0] * p.delta[0];
            let diff = x[0] - p.centroid[0];
            sum += w * inv_sqrt_2pi / var.sqrt() * (-diff * diff / (2.0 * var)).exp();
        }
        let reference = sum / n_total;

        let tol = if cfg!(feature = "fast-math") { 1e-6 } else { 1e-12 };
        prop_assert!(
            (got - reference).abs() <= tol * (1.0 + reference.abs()),
            "density {} vs std-exp reference {} (tol {})", got, reference, tol
        );
    }
}

// The fastexp A/B builder (used by the benches) must stay within the
// documented budget of the exact scalar build — the per-cache analogue
// of the `fast_exp` unit bound, exercised through the full mixture
// including weights and normalization. Runs in both feature builds.
#[test]
fn fastexp_builder_within_budget_of_exact_builder() {
    let pts: Vec<UncertainPoint> = (0..60)
        .map(|i| {
            let x = (i as f64 * 0.618_033_988_749).fract() * 20.0 - 10.0;
            let y = (i as f64 * 0.414_213_562_373).fract() * 6.0;
            UncertainPoint::new(vec![x, y], vec![(i % 4) as f64 * 0.2, 0.1]).unwrap()
        })
        .collect();
    let d = UncertainDataset::from_points(pts).unwrap();
    let mc = fit(&d, 8);
    for q in [[-9.5, 0.3], [0.0, 3.0], [4.2, 5.9], [11.0, -1.0]] {
        let exact = mc.kernel_columns_scalar(&q, None).unwrap();
        let fast = mc.kernel_columns_fastexp(&q).unwrap();
        for bits in 1u64..4 {
            let s = Subspace::from_bits(bits);
            let a = exact.density(s).unwrap();
            let b = fast.density(s).unwrap();
            assert!(
                (a - b).abs() <= 1e-6 * (1.0 + a.abs()),
                "query {q:?} subspace {bits:#b}: exact {a} vs fastexp {b}"
            );
        }
    }
}
