//! Numeric-invariant tests for the micro-cluster pipeline: the Lemma 1
//! negative-variance regression and property tests asserting that
//! pseudo-point bandwidths stay finite and non-negative, the Eq. 5
//! distance never goes negative, and densities stay finite for finite
//! input.

use proptest::prelude::*;
use udm_core::num::negative_clamp_count;
use udm_core::UncertainPoint;
use udm_kde::KdeConfig;
use udm_microcluster::distance::{error_adjusted_sq, error_adjusted_unclamped};
use udm_microcluster::{MicroCluster, MicroClusterKde, PseudoPoint};

/// Regression for the Lemma 1 failure mode: three identical points at a
/// large magnitude make `CF2/n − (CF1/n)²` — mathematically zero —
/// evaluate to −2.0 in f64 through catastrophic cancellation. The clamped
/// path must return exactly 0, count the event, and keep the pseudo-point
/// error finite.
#[test]
fn lemma1_negative_variance_is_clamped_and_counted() {
    let x = 100_000_002.2_f64;
    let p = UncertainPoint::new(vec![x], vec![0.5]).unwrap();
    let mut c = MicroCluster::new(1);
    for _ in 0..3 {
        c.insert(&p).unwrap();
    }

    // The raw, unclamped Lemma 1 expression really is negative here.
    let inv = 1.0 / 3.0;
    let mean = c.cf1()[0] * inv;
    let raw = c.cf2()[0] * inv - mean * mean;
    assert!(raw < 0.0, "expected FP cancellation, got {raw}");

    // The clamped accessor returns exactly 0 and bumps the counter.
    let before = negative_clamp_count();
    assert_eq!(c.variance(0), 0.0);
    assert!(negative_clamp_count() > before);

    // Δ² = max(0, variance) + EF2/n = 0 + 0.25, so Δ = 0.5 exactly.
    let pseudo = PseudoPoint::from_cluster(&c, true).unwrap();
    assert!(pseudo.delta[0].is_finite());
    assert!((pseudo.delta[0] - 0.5).abs() < 1e-12);

    // The unadjusted variant drops EF2 and degenerates to Δ = 0, not NaN.
    let unadjusted = PseudoPoint::from_cluster(&c, false).unwrap();
    assert_eq!(unadjusted.delta[0], 0.0);
}

const DIM: usize = 3;

fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<UncertainPoint>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(-1e6..1e6f64, DIM),
            proptest::collection::vec(0.0..1e3f64, DIM),
        )
            .prop_map(|(v, e)| UncertainPoint::new(v, e).unwrap()),
        2..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Pseudo-point bandwidths (the Δ_j(C) fed into the Eq. 9 kernel
    // width) are finite and non-negative under arbitrary insert/merge
    // streams, in both the error-adjusted and unadjusted modes.
    #[test]
    fn pseudo_point_bandwidth_finite_and_non_negative(
        points in arb_points(40),
        split in 0usize..64,
    ) {
        let cut = split % points.len();
        let mut a = MicroCluster::new(DIM);
        let mut b = MicroCluster::new(DIM);
        for p in &points[..cut] {
            a.insert(p).unwrap();
        }
        for p in &points[cut..] {
            b.insert(p).unwrap();
        }
        if b.is_empty() {
            std::mem::swap(&mut a, &mut b);
        }
        if !a.is_empty() {
            b.merge(&a).unwrap();
        }
        for error_adjusted in [true, false] {
            let pseudo = PseudoPoint::from_cluster(&b, error_adjusted).unwrap();
            for (j, d) in pseudo.delta.iter().enumerate() {
                prop_assert!(d.is_finite() && *d >= 0.0,
                    "delta[{j}] = {d} (error_adjusted = {error_adjusted})");
            }
        }
    }

    // Eq. 5: the error-adjusted distance is never negative and never
    // NaN, even though its per-dimension terms `(Y_j − c_j)² − ψ_j²`
    // routinely are negative before the max{0, ·}.
    #[test]
    fn eq5_distance_never_negative(
        values in proptest::collection::vec(-1e6..1e6f64, DIM),
        errors in proptest::collection::vec(0.0..1e6f64, DIM),
        centroid in proptest::collection::vec(-1e6..1e6f64, DIM),
    ) {
        let p = UncertainPoint::new(values, errors).unwrap();
        let d = error_adjusted_sq(&p, &centroid);
        prop_assert!(d.is_finite() && d >= 0.0, "distance = {d}");
        // The unclamped diagnostic variant must still be finite.
        prop_assert!(error_adjusted_unclamped(&p, &centroid).is_finite());
    }

    // Whenever a micro-cluster KDE fits, its bandwidths are finite and
    // positive and its density at any finite query is finite and
    // non-negative.
    #[test]
    fn density_finite_for_finite_queries(
        points in arb_points(24),
        query in proptest::collection::vec(-2e6..2e6f64, DIM),
    ) {
        let mut c = MicroCluster::new(DIM);
        for p in &points {
            c.insert(p).unwrap();
        }
        if let Ok(kde) = MicroClusterKde::fit(std::slice::from_ref(&c), KdeConfig::default()) {
            for h in kde.bandwidths() {
                prop_assert!(h.is_finite() && *h > 0.0, "bandwidth = {h}");
            }
            let d = kde.density(&query).unwrap();
            prop_assert!(d.is_finite() && d >= 0.0, "density = {d}");
        }
    }
}
