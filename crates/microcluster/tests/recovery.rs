//! Crash drill: kill the ingest mid-stream, restore from the checksummed
//! checkpoint, replay the tail, and demand *bit-identical* micro-cluster
//! sufficient statistics vs. an uninterrupted run.

use std::path::PathBuf;
use udm_data::fault::{FaultPlan, FaultyStream, RawRecord};
use udm_data::stream::{DriftingStream, Regime};
use udm_data::synth::{GaussianClassSpec, MixtureGenerator};
use udm_microcluster::checkpoint::prev_path;
use udm_microcluster::{
    load_checkpoint, CheckpointDriver, IngestPolicy, MaintainerConfig, ResilientIngestor,
};

fn tmp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("udm_recovery_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

fn faulty_records() -> Vec<RawRecord> {
    let mixture = |centers: &[(f64, f64)]| {
        MixtureGenerator::new(
            2,
            centers
                .iter()
                .map(|&(x, y)| GaussianClassSpec::spherical(vec![x, y], 1.0, 1.0))
                .collect(),
        )
        .unwrap()
    };
    let stream = DriftingStream::new(
        vec![
            Regime {
                mixture: mixture(&[(0.0, 0.0), (8.0, 8.0)]),
                duration: 600,
                error_scale: 0.5,
            },
            Regime {
                mixture: mixture(&[(20.0, -5.0), (28.0, 3.0)]),
                duration: 400,
                error_scale: 1.5,
            },
        ],
        42,
    )
    .unwrap();
    let faulty = FaultyStream::new(&stream.generate(), FaultPlan::uniform(0.15), 7).unwrap();
    let (records, log) = faulty.records();
    assert!(log.total() > 50, "fault mix too thin to drill: {log}");
    records
}

fn fresh_driver(path: PathBuf, every: u64) -> CheckpointDriver {
    let ingestor =
        ResilientIngestor::new(2, MaintainerConfig::new(25), IngestPolicy::default()).unwrap();
    CheckpointDriver::new(ingestor, path, every).unwrap()
}

#[test]
fn killed_ingest_recovers_bit_identically() {
    let records = faulty_records();

    // Uninterrupted reference run.
    let path_a = tmp_file("uninterrupted.json");
    let mut reference = fresh_driver(path_a.clone(), 50);
    for r in &records {
        reference.observe(r).unwrap();
    }
    let (_, reference) = reference.finish().unwrap();

    // Crashed run: killed at an arbitrary record NOT aligned to the
    // checkpoint cadence, so a genuine tail must be replayed.
    let path_b = tmp_file("crashed.json");
    let kill_at = 537usize;
    {
        let mut doomed = fresh_driver(path_b.clone(), 50);
        for r in &records[..kill_at] {
            doomed.observe(r).unwrap();
        }
        // The driver is dropped here without finish(): the crash.
    }
    let persisted = load_checkpoint(&path_b).unwrap();
    assert!(
        persisted.next_seq < records[kill_at].seq,
        "checkpoint ({}) must predate the kill point ({}) for the drill \
         to exercise tail replay",
        persisted.next_seq,
        records[kill_at].seq
    );

    // Recover and replay the entire stream; the driver fast-forwards
    // through everything the checkpoint already covers.
    let mut recovered = CheckpointDriver::recover(path_b.clone(), 50).unwrap();
    let mut skipped = 0usize;
    for r in &records {
        if recovered.observe(r).unwrap().is_none() {
            skipped += 1;
        }
    }
    assert!(skipped > 0, "replay should fast-forward the covered prefix");
    let (_, recovered) = recovered.finish().unwrap();

    // Bit-identical sufficient statistics: CF2x, EF2x, CF1x, n and the
    // timestamps, across every cluster. MicroCluster's PartialEq is
    // exact f64 equality — no tolerance anywhere.
    assert_eq!(
        recovered.maintainer().clusters(),
        reference.maintainer().clusters()
    );
    assert_eq!(
        recovered.maintainer().points_seen(),
        reference.maintainer().points_seen()
    );
    assert_eq!(recovered.col_stats(), reference.col_stats());
    assert_eq!(recovered.counters(), reference.counters());
    assert_eq!(recovered.watermark(), reference.watermark());

    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}

#[test]
fn truncated_latest_checkpoint_falls_back_to_previous_version() {
    // The crash window this drill covers: the process dies while the
    // latest checkpoint is being damaged on disk (torn write at the
    // filesystem level, partial sync, bad sector). Recovery must fall
    // back to the rotated previous generation and replay a longer tail
    // — not error out, and not lose a byte of fidelity.
    let records = faulty_records();

    let path_a = tmp_file("truncation_ref.json");
    let mut reference = fresh_driver(path_a.clone(), 50);
    for r in &records {
        reference.observe(r).unwrap();
    }
    let (_, reference) = reference.finish().unwrap();

    let path_b = tmp_file("truncation_crash.json");
    let kill_at = 537usize;
    {
        let mut doomed = fresh_driver(path_b.clone(), 50);
        for r in &records[..kill_at] {
            doomed.observe(r).unwrap();
        }
    }
    // Damage the latest generation mid-write; the rotated .prev sibling
    // (one checkpoint interval older) must exist and verify.
    let latest = load_checkpoint(&path_b).unwrap();
    let previous = load_checkpoint(&prev_path(&path_b)).unwrap();
    assert!(previous.next_seq < latest.next_seq);
    let text = std::fs::read_to_string(&path_b).unwrap();
    std::fs::write(&path_b, &text[..text.len() / 2]).unwrap();
    assert!(load_checkpoint(&path_b).is_err(), "truncation undetected");

    let mut recovered = CheckpointDriver::recover(path_b.clone(), 50).unwrap();
    assert_eq!(
        recovered.next_seq(),
        previous.next_seq,
        "recovery must resume from the previous generation"
    );
    for r in &records {
        recovered.observe(r).unwrap();
    }
    let (_, recovered) = recovered.finish().unwrap();

    assert_eq!(
        recovered.maintainer().clusters(),
        reference.maintainer().clusters()
    );
    assert_eq!(recovered.col_stats(), reference.col_stats());
    assert_eq!(recovered.counters(), reference.counters());
    assert_eq!(recovered.watermark(), reference.watermark());

    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(prev_path(&path_a)).ok();
    std::fs::remove_file(&path_b).ok();
    std::fs::remove_file(prev_path(&path_b)).ok();
}

#[test]
fn recovery_at_every_checkpoint_boundary_is_exact() {
    // Harden the drill: kill right AT a checkpoint boundary and just
    // after one — both must recover exactly.
    let records = faulty_records();
    let path_a = tmp_file("boundary_ref.json");
    let mut reference = fresh_driver(path_a.clone(), 100);
    for r in &records {
        reference.observe(r).unwrap();
    }
    let (_, reference) = reference.finish().unwrap();

    for (name, kill_at) in [("at_boundary.json", 300usize), ("after_boundary.json", 301)] {
        let path = tmp_file(name);
        {
            let mut doomed = fresh_driver(path.clone(), 100);
            for r in &records[..kill_at] {
                doomed.observe(r).unwrap();
            }
        }
        let mut recovered = CheckpointDriver::recover(path.clone(), 100).unwrap();
        for r in &records {
            recovered.observe(r).unwrap();
        }
        let (_, recovered) = recovered.finish().unwrap();
        assert_eq!(
            recovered.maintainer().clusters(),
            reference.maintainer().clusters(),
            "kill at record {kill_at}"
        );
        assert_eq!(
            recovered.counters(),
            reference.counters(),
            "kill at {kill_at}"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&path_a).ok();
}
