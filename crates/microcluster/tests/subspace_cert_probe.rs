//! Temporary review probe: does certified_error bound SUBSPACE errors?

use udm_core::{Subspace, UncertainPoint};
use udm_kde::KdeConfig;
use udm_microcluster::{CoresetKde, MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_model(rng: &mut Rng, dim: usize, n: usize, q: usize) -> MicroClusterKde {
    let mut maintainer = MicroClusterMaintainer::new(dim, MaintainerConfig::new(q)).unwrap();
    let modes = 2 + rng.below(3);
    let centers: Vec<Vec<f64>> = (0..modes)
        .map(|_| (0..dim).map(|_| rng.range(-4.0, 4.0)).collect())
        .collect();
    for t in 0..n {
        let c = &centers[rng.below(modes)];
        let values: Vec<f64> = c.iter().map(|&m| m + rng.range(-1.0, 1.0)).collect();
        let errors: Vec<f64> = (0..dim).map(|_| rng.range(0.5, 2.0)).collect();
        let p = UncertainPoint::new(values, errors)
            .unwrap()
            .with_timestamp(t as u64);
        maintainer.insert(&p).unwrap();
    }
    MicroClusterKde::fit(maintainer.clusters(), KdeConfig::error_adjusted()).unwrap()
}

#[test]
fn probe_subspace_certificate() {
    let mut worst: f64 = 0.0;
    let mut violations = 0usize;
    for case in 0..40u64 {
        let mut rng = Rng(0xBEEF + case);
        let dim = 2 + rng.below(3);
        let n = 80 + rng.below(150);
        let q = 16 + rng.below(24);
        let kde = random_model(&mut rng, dim, n, q);
        let eps = rng.range(0.05, 0.3);
        let coreset = CoresetKde::build(&kde, eps).unwrap();
        if coreset.rows() == coreset.source_rows() {
            continue;
        }
        let budget = coreset.certified_error();
        if budget <= 0.0 {
            continue;
        }
        for _ in 0..200 {
            let x: Vec<f64> = (0..dim).map(|_| rng.range(-5.0, 5.0)).collect();
            for d in 0..dim {
                let s = Subspace::singleton(d).unwrap();
                let exact = kde.density_subspace_with_error(&x, None, s).unwrap();
                let approx = coreset
                    .inner()
                    .density_subspace_with_error(&x, None, s)
                    .unwrap();
                let err = (approx - exact).abs();
                let ratio = err / budget;
                if ratio > worst {
                    worst = ratio;
                }
                if err > budget * (1.0 + 1e-9) + 1e-12 {
                    violations += 1;
                }
            }
        }
    }
    println!("worst err/certified ratio = {worst}, violations = {violations}");
    assert!(violations == 0, "subspace certificate violated, worst ratio {worst}");
}
