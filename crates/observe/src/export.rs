//! Snapshot exporters: Prometheus text format, JSON, and a console table.

use crate::registry::{HistogramSnapshot, Snapshot};
use std::fmt::Write;

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters and gauges emit a `# TYPE` line followed by the sample.
/// Histograms emit cumulative `_bucket{le="..."}` samples (including the
/// `+Inf` bucket), `_sum`, and `_count`, per the Prometheus convention.
/// Span aggregates are exported as three labelled families:
/// `udm_span_self_seconds`, `udm_span_total_seconds`, and
/// `udm_span_calls_total`, keyed by `path`.
#[must_use]
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        let _ = writeln!(out, "# TYPE {} counter", c.name);
        let _ = writeln!(out, "{} {}", c.name, c.value);
    }
    for g in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE {} gauge", g.name);
        let _ = writeln!(out, "{} {}", g.name, format_f64(g.value));
    }
    for h in &snapshot.histograms {
        write_prometheus_histogram(&mut out, h);
    }
    if !snapshot.spans.is_empty() {
        let _ = writeln!(out, "# TYPE udm_span_self_seconds gauge");
        for s in &snapshot.spans {
            let _ = writeln!(
                out,
                "udm_span_self_seconds{{path=\"{}\"}} {}",
                escape_label(&s.path),
                format_f64(s.self_seconds)
            );
        }
        let _ = writeln!(out, "# TYPE udm_span_total_seconds gauge");
        for s in &snapshot.spans {
            let _ = writeln!(
                out,
                "udm_span_total_seconds{{path=\"{}\"}} {}",
                escape_label(&s.path),
                format_f64(s.total_seconds)
            );
        }
        let _ = writeln!(out, "# TYPE udm_span_calls_total counter");
        for s in &snapshot.spans {
            let _ = writeln!(
                out,
                "udm_span_calls_total{{path=\"{}\"}} {}",
                escape_label(&s.path),
                s.calls
            );
        }
    }
    out
}

fn write_prometheus_histogram(out: &mut String, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {} histogram", h.name);
    let mut cumulative = 0u64;
    for (i, &bound) in h.bounds.iter().enumerate() {
        cumulative = cumulative.saturating_add(h.bucket_counts[i]);
        let _ = writeln!(out, "{}_bucket{{le=\"{bound:?}\"}} {cumulative}", h.name);
    }
    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
    let _ = writeln!(out, "{}_sum {}", h.name, format_f64(h.sum));
    let _ = writeln!(out, "{}_count {}", h.name, h.count);
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// `{:?}` gives the shortest round-trippable float text; non-finite
/// values use Prometheus spellings.
fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// Renders a snapshot as a JSON document.
#[must_use]
pub fn to_json(snapshot: &Snapshot) -> String {
    serde_json::to_string(snapshot).unwrap_or_else(|_| "{}".to_string())
}

/// Renders a snapshot as a human-readable console table: counters,
/// gauges, histogram summaries (count/sum/quantiles), and the span
/// profile tree with self/total time per path.
#[must_use]
pub fn to_table(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        let width = name_width(snapshot.counters.iter().map(|c| c.name.len()));
        for c in &snapshot.counters {
            let _ = writeln!(out, "  {:<width$}  {}", c.name, c.value);
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        let width = name_width(snapshot.gauges.iter().map(|g| g.name.len()));
        for g in &snapshot.gauges {
            let _ = writeln!(out, "  {:<width$}  {}", g.name, format_f64(g.value));
        }
    }
    if !snapshot.histograms.is_empty() {
        let _ = writeln!(out, "histograms:");
        let width = name_width(snapshot.histograms.iter().map(|h| h.name.len()));
        for h in &snapshot.histograms {
            let _ = writeln!(
                out,
                "  {:<width$}  count={} sum={} p50={} p95={} p99={}",
                h.name,
                h.count,
                format_f64(h.sum),
                format_f64(h.p50),
                format_f64(h.p95),
                format_f64(h.p99),
            );
        }
    }
    if !snapshot.spans.is_empty() {
        let _ = writeln!(out, "spans (self / total / calls):");
        for s in &snapshot.spans {
            // Indent children under their parents via path depth.
            let depth = s.path.matches('/').count();
            let name = s.path.rsplit('/').next().unwrap_or(&s.path);
            let _ = writeln!(
                out,
                "  {:indent$}{name}  {:.6}s / {:.6}s / {}",
                "",
                s.self_seconds,
                s.total_seconds,
                s.calls,
                indent = depth * 2,
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

fn name_width<I: Iterator<Item = usize>>(lens: I) -> usize {
    lens.max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{CounterSnapshot, GaugeSnapshot, Registry};
    use crate::span::SpanNode;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter("exp_kernel_evals_total").add(42);
        r.gauge("exp_quarantine_len").set(3.0);
        let h = r.histogram_with_bounds("exp_latency_seconds", &[0.001, 0.01, 0.1]);
        h.observe(0.0005);
        h.observe(0.05);
        h.observe(5.0);
        let mut snap = r.snapshot();
        snap.spans = vec![
            SpanNode {
                path: "classify".to_string(),
                calls: 1,
                total_seconds: 1.5,
                self_seconds: 0.5,
            },
            SpanNode {
                path: "classify/fit".to_string(),
                calls: 1,
                total_seconds: 1.0,
                self_seconds: 1.0,
            },
        ];
        snap
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let text = to_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE exp_latency_seconds histogram"));
        assert!(text.contains("exp_latency_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("exp_latency_seconds_bucket{le=\"0.01\"} 1"));
        assert!(text.contains("exp_latency_seconds_bucket{le=\"0.1\"} 2"));
        assert!(text.contains("exp_latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("exp_latency_seconds_count 3"));
        assert!(text.contains("exp_kernel_evals_total 42"));
        assert!(text.contains("udm_span_self_seconds{path=\"classify/fit\"} 1.0"));
        assert!(text.contains("udm_span_calls_total{path=\"classify\"} 1"));
    }

    #[test]
    fn json_parses_back() {
        let text = to_json(&sample_snapshot());
        let value = serde_json::parse_value(&text).unwrap();
        match value {
            serde::Value::Map(entries) => {
                assert!(entries.iter().any(|(k, _)| k == "counters"));
                assert!(entries.iter().any(|(k, _)| k == "spans"));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn table_indents_span_children() {
        let text = to_table(&sample_snapshot());
        assert!(text.contains("counters:"));
        assert!(text.contains("exp_kernel_evals_total"));
        assert!(text.contains("\n  classify  "));
        assert!(text.contains("\n    fit  "));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let empty = Snapshot {
            counters: Vec::<CounterSnapshot>::new(),
            gauges: Vec::<GaugeSnapshot>::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
        };
        assert_eq!(to_table(&empty), "(no metrics recorded)\n");
        assert_eq!(to_prometheus(&empty), "");
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
