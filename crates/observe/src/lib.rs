//! `udm-observe` — workspace-wide metrics, tracing, and profiling.
//!
//! The density estimators, micro-cluster maintenance, and the roll-up
//! classifier are instrumented with three primitives, all built on
//! `parking_lot` + atomics with no external telemetry dependency:
//!
//! * **Metrics** ([`registry`]): monotonic [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s with p50/p95/p99 summaries, held in a
//!   sharded global registry. The hot path (recording into an existing
//!   metric) is a relaxed atomic op; the registry lock is only taken on
//!   first registration of a name.
//! * **Spans** ([`span`]): hierarchical RAII timing guards created by
//!   [`span!`]. Finished spans aggregate into an in-process self-time
//!   profile tree and, when tracing is initialised, stream through
//!   per-thread buffers into a JSONL trace file.
//! * **Exporters** ([`export`]): Prometheus text format, JSON, and a
//!   human-readable console table, plus a per-run [`RunManifest`]
//!   capturing seed, config, `git describe`, wall/CPU time and a full
//!   metric snapshot.
//!
//! # Enabling and disabling
//!
//! Recording is gated twice:
//!
//! * the `enabled` cargo feature (default **on**) — compiling it out
//!   turns every macro body into a statically-false branch that the
//!   optimiser deletes, so instrumented code is bit-identical to
//!   uninstrumented code;
//! * a runtime switch ([`set_enabled`]) — useful for tests and for
//!   measuring instrumentation overhead without rebuilding.
//!
//! A disabled macro never touches the registry, so no metric entries are
//! created as a side effect of merely executing instrumented code.
//!
//! # Example
//!
//! ```
//! udm_observe::counter_add!("doc_kernel_evals_total", 128);
//! {
//!     let _span = udm_observe::span!("doc_phase");
//!     udm_observe::histogram_observe!("doc_latency_seconds", 0.003);
//! }
//! let snap = udm_observe::Snapshot::capture();
//! let text = udm_observe::to_prometheus(&snap);
//! if udm_observe::enabled() {
//!     assert!(text.contains("doc_kernel_evals_total 128"));
//! }
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod manifest;
pub mod registry;
pub mod span;

pub use export::{to_json, to_prometheus, to_table};
pub use manifest::{git_describe, RunManifest};
pub use registry::{
    global, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot,
    LazyCounter, LazyGauge, LazyHistogram, Registry, Snapshot,
};
pub use span::{flush_tracing, init_tracing, profile, reset_profile, SpanGuard, SpanNode};

use std::sync::atomic::{AtomicBool, Ordering};

static RUNTIME_ENABLED: AtomicBool = AtomicBool::new(true);

/// True when telemetry is recording: the `enabled` cargo feature is
/// compiled in **and** the runtime switch has not been flipped off.
///
/// With the feature compiled out this is a `const false`, so callers
/// guarding work behind it compile to nothing.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    cfg!(feature = "enabled") && RUNTIME_ENABLED.load(Ordering::Relaxed)
}

/// Flips the runtime recording switch (no-op when the `enabled` feature
/// is compiled out, since [`enabled`] is then constantly false).
///
/// Intended for tests and overhead measurements; production binaries
/// leave it on and choose at compile time instead.
pub fn set_enabled(on: bool) {
    RUNTIME_ENABLED.store(on, Ordering::Relaxed);
}

/// Adds `delta` (a `u64`) to the named monotonic counter.
///
/// The name must be a string literal; the metric handle is cached in a
/// per-call-site static, so steady-state cost is one relaxed atomic add.
#[macro_export]
macro_rules! counter_add {
    ($name:literal, $delta:expr) => {
        if $crate::enabled() {
            static __UDM_OBSERVE_COUNTER: $crate::LazyCounter = $crate::LazyCounter::new($name);
            __UDM_OBSERVE_COUNTER.get().add($delta);
        }
    };
}

/// Increments the named monotonic counter by one.
#[macro_export]
macro_rules! counter_inc {
    ($name:literal) => {
        $crate::counter_add!($name, 1)
    };
}

/// Sets the named gauge to an `f64` value.
#[macro_export]
macro_rules! gauge_set {
    ($name:literal, $value:expr) => {
        if $crate::enabled() {
            static __UDM_OBSERVE_GAUGE: $crate::LazyGauge = $crate::LazyGauge::new($name);
            __UDM_OBSERVE_GAUGE.get().set($value);
        }
    };
}

/// Records an `f64` observation into the named histogram (default
/// log-spaced buckets; see [`registry::default_bounds`]).
#[macro_export]
macro_rules! histogram_observe {
    ($name:literal, $value:expr) => {
        if $crate::enabled() {
            static __UDM_OBSERVE_HIST: $crate::LazyHistogram = $crate::LazyHistogram::new($name);
            __UDM_OBSERVE_HIST.get().observe($value);
        }
    };
}

/// Opens a hierarchical timing span; returns a [`SpanGuard`] that records
/// the span when dropped.
///
/// Bind the guard to a **named** variable (`let _guard = span!("x");`) so
/// it lives to the end of the scope — `let _ = span!(...)` drops it
/// immediately and times nothing (udm-lint rule UDM006 rejects that).
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_by_default_with_feature() {
        #[cfg(feature = "enabled")]
        assert!(super::enabled());
        #[cfg(not(feature = "enabled"))]
        assert!(!super::enabled());
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn feature_off_macros_are_inert() {
        // Compiled without `enabled`: the macros must still typecheck and
        // must leave the registry untouched.
        crate::counter_add!("featureoff_counter_total", 3);
        crate::gauge_set!("featureoff_gauge", 1.5);
        crate::histogram_observe!("featureoff_hist", 0.1);
        let _guard = crate::span!("featureoff_span");
        drop(_guard);
        let snap = crate::Snapshot::capture();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }
}
