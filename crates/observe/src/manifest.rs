//! Per-run manifests: what ran, with which inputs, for how long.
//!
//! A [`RunManifest`] is written next to a run's results so that any
//! metric snapshot or trace file can be tied back to the exact command,
//! seed, and source revision that produced it.

use crate::registry::Snapshot;
use serde::Serialize;
use std::path::Path;
use std::time::Instant;

/// Manifest schema version, bumped on incompatible field changes.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// A record of one run: command line, seed, config summary, source
/// revision, wall/CPU time, and the final metric snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct RunManifest {
    /// Schema version of this manifest document.
    pub schema_version: u32,
    /// The argv that produced the run.
    pub command: Vec<String>,
    /// RNG seed, when the command took one.
    pub seed: Option<u64>,
    /// Free-form one-line config summary.
    pub config: String,
    /// `git describe --always --dirty` of the source tree, if available.
    pub git_describe: Option<String>,
    /// Wall-clock duration of the run, seconds.
    pub wall_seconds: f64,
    /// Process CPU time (user + system), seconds, when the platform
    /// exposes it.
    pub cpu_seconds: Option<f64>,
    /// Metric + span snapshot at the end of the run.
    pub metrics: Snapshot,
}

impl RunManifest {
    /// Builds a manifest for a run that started at `started`, capturing
    /// the current global snapshot, git revision, and CPU time.
    #[must_use]
    pub fn capture(command: &[String], seed: Option<u64>, config: &str, started: Instant) -> Self {
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            command: command.to_vec(),
            seed,
            config: config.to_string(),
            git_describe: git_describe(),
            wall_seconds: started.elapsed().as_secs_f64(),
            cpu_seconds: cpu_seconds(),
            metrics: Snapshot::capture(),
        }
    }

    /// Writes the manifest as JSON to `path`.
    ///
    /// # Errors
    /// Returns an error when the file cannot be created or written.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json)
    }
}

/// Runs `git describe --always --dirty` in the current directory;
/// `None` when git is unavailable or the cwd is not a repository.
#[must_use]
pub fn git_describe() -> Option<String> {
    let output = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8(output.stdout).ok()?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed.to_string())
    }
}

/// Process CPU time (utime + stime) in seconds from `/proc/self/stat`.
#[cfg(target_os = "linux")]
#[must_use]
pub fn cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field is parenthesised and may contain spaces; fields
    // after the closing paren are space-separated. utime and stime are
    // the 14th and 15th overall fields, i.e. indices 11 and 12 of the
    // post-paren tail.
    let tail = stat.rsplit(')').next()?;
    let fields: Vec<&str> = tail.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    // USER_HZ is 100 on every supported Linux configuration.
    Some(ticks_to_seconds(utime.saturating_add(stime)))
}

/// Process CPU time is unavailable off Linux without external crates.
#[cfg(not(target_os = "linux"))]
#[must_use]
pub fn cpu_seconds() -> Option<f64> {
    None
}

#[cfg(target_os = "linux")]
#[allow(clippy::cast_precision_loss)]
fn ticks_to_seconds(ticks: u64) -> f64 {
    ticks as f64 / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_serialises_with_all_fields() {
        let started = Instant::now();
        let manifest = RunManifest::capture(
            &["udm".to_string(), "classify".to_string()],
            Some(7),
            "q=40 threshold=0.3",
            started,
        );
        assert_eq!(manifest.schema_version, MANIFEST_SCHEMA_VERSION);
        assert!(manifest.wall_seconds >= 0.0);
        let json = serde_json::to_string(&manifest).unwrap();
        let value = serde_json::parse_value(&json).unwrap();
        let entries = match value {
            serde::Value::Map(entries) => entries,
            other => panic!("expected object, got {other:?}"),
        };
        for key in ["schema_version", "command", "seed", "config", "metrics"] {
            assert!(entries.iter().any(|(k, _)| k == key), "missing {key}");
        }
    }

    #[test]
    fn manifest_writes_parseable_file() {
        let dir = std::env::temp_dir().join("udm_observe_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.manifest.json");
        let manifest = RunManifest::capture(&["udm".to_string()], None, "none", Instant::now());
        manifest.write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(serde_json::parse_value(&text).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn cpu_seconds_reads_proc() {
        // Burn a little CPU so the value is meaningful, then just check
        // it parses to a non-negative number.
        let mut acc = 0u64;
        for i in 0..1_000_000u64 {
            acc = acc.wrapping_add(i.wrapping_mul(2_654_435_761));
        }
        assert!(acc != 1); // keep the loop alive
        let cpu = cpu_seconds().expect("linux exposes /proc/self/stat");
        assert!(cpu >= 0.0);
    }
}
