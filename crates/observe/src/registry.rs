//! The sharded, lock-light metrics registry.
//!
//! Layout: metric names hash (FNV-1a) into one of a fixed set of shards,
//! each a `parking_lot::Mutex<HashMap<&'static str, Metric>>`. The shard
//! lock is taken only to *register* a name; recording into an existing
//! metric is lock-free (relaxed atomics). Call sites additionally cache
//! their metric handle in a per-site static ([`LazyCounter`] and
//! friends), so the steady-state cost of `counter_add!` is one atomic
//! `fetch_add`.
//!
//! Histograms are striped: each carries several independent sets of
//! atomic bucket counts, and a thread records into the stripe indexed by
//! its thread id. Stripes are merged on snapshot, so concurrent writers
//! rarely contend on the same cache line while totals stay exact.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of registry shards (name-hash partitions).
const SHARD_COUNT: usize = 8;
/// Number of independent atomic stripes per histogram.
const STRIPE_COUNT: usize = 8;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero. A test/monitoring hook — a "monotonic" counter
    /// only moves backwards through this explicit call.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins `f64` gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// One histogram stripe: bucket counts plus a CAS-accumulated f64 sum.
#[derive(Debug)]
struct Stripe {
    /// One slot per finite bound plus a final overflow (`+Inf`) slot.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Stripe {
    fn new(buckets: usize) -> Self {
        Stripe {
            counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    fn add_sum(&self, value: f64) {
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

/// The default histogram bucket ladder: a 1 / 2.5 / 5 decade progression
/// from `1e-6` to `5e3`, suiting both second-scale latencies and
/// distance-like magnitudes. An implicit `+Inf` bucket catches the rest.
#[must_use]
pub fn default_bounds() -> Vec<f64> {
    let mut out = Vec::with_capacity(30);
    for exp in -6i32..=3 {
        let base = 10f64.powi(exp);
        out.push(base);
        out.push(2.5 * base);
        out.push(5.0 * base);
    }
    out
}

/// A fixed-bucket histogram with striped atomic storage.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending finite upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    stripes: Vec<Stripe>,
}

impl Histogram {
    /// Creates a histogram over the [`default_bounds`] ladder.
    #[must_use]
    pub fn new() -> Self {
        Self::with_bounds(default_bounds())
    }

    /// Creates a histogram over custom ascending upper bounds. Unsorted
    /// or non-finite bounds are sanitised (sorted, deduplicated, and
    /// non-finite entries dropped) rather than rejected.
    #[must_use]
    pub fn with_bounds(mut bounds: Vec<f64>) -> Self {
        bounds.retain(|b| b.is_finite());
        bounds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        bounds.dedup_by(|a, b| a.to_bits() == b.to_bits());
        let buckets = bounds.len() + 1;
        Histogram {
            bounds,
            stripes: (0..STRIPE_COUNT).map(|_| Stripe::new(buckets)).collect(),
        }
    }

    /// The finite bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation. Non-finite values land in the `+Inf`
    /// bucket and contribute nothing to the sum, so a stray NaN cannot
    /// poison the aggregate.
    pub fn observe(&self, value: f64) {
        let stripe = &self.stripes[stripe_index()];
        let idx = if value.is_finite() {
            self.bounds.partition_point(|&b| b < value)
        } else {
            self.bounds.len()
        };
        stripe.counts[idx].fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            stripe.add_sum(value);
        }
    }

    /// Merges another histogram's totals into this one — the roll-up
    /// primitive for per-shard metric registries. The merge is only
    /// defined bucket-by-bucket, so both histograms must share an
    /// identical bound ladder (bitwise); on a mismatch nothing is merged
    /// and `false` is returned. The other histogram is not drained:
    /// merging folds its current totals into one stripe of `self`.
    pub fn merge(&self, other: &Histogram) -> bool {
        if self.bounds.len() != other.bounds.len()
            || self
                .bounds
                .iter()
                .zip(&other.bounds)
                .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return false;
        }
        let (counts, _count, sum) = other.fold_stripes();
        let stripe = &self.stripes[stripe_index()];
        for (slot, c) in stripe.counts.iter().zip(&counts) {
            slot.fetch_add(*c, Ordering::Relaxed);
        }
        stripe.add_sum(sum);
        true
    }

    /// Folds the stripes into per-bucket totals, total count, and sum.
    fn fold_stripes(&self) -> (Vec<u64>, u64, f64) {
        let buckets = self.bounds.len() + 1;
        let mut counts = vec![0u64; buckets];
        let mut sum = 0.0;
        for stripe in &self.stripes {
            for (slot, c) in counts.iter_mut().zip(&stripe.counts) {
                *slot = slot.saturating_add(c.load(Ordering::Relaxed));
            }
            sum += f64::from_bits(stripe.sum_bits.load(Ordering::Relaxed));
        }
        let count = counts.iter().fold(0u64, |a, &c| a.saturating_add(c));
        (counts, count, sum)
    }

    /// Snapshots the histogram under `name`.
    #[must_use]
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let (bucket_counts, count, sum) = self.fold_stripes();
        let q = |p: f64| quantile_from_buckets(&self.bounds, &bucket_counts, count, p);
        let (p50, p95, p99) = (q(0.50), q(0.95), q(0.99));
        HistogramSnapshot {
            name: name.to_string(),
            bounds: self.bounds.clone(),
            bucket_counts,
            count,
            sum,
            p50,
            p95,
            p99,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Estimates the `p`-quantile from bucket totals by linear interpolation
/// within the containing bucket. Returns `0.0` on an empty histogram;
/// observations in the `+Inf` bucket report the last finite bound.
///
/// Because the estimate is a monotone function of the target rank, the
/// returned quantiles always satisfy `q(a) <= q(b)` for `a <= b`.
fn quantile_from_buckets(bounds: &[f64], counts: &[u64], total: u64, p: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let rank = (p * total_as_f64(total)).max(1.0);
    let mut cumulative = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        let in_bucket = total_as_f64(c);
        if cumulative + in_bucket >= rank {
            if i >= bounds.len() {
                // Overflow bucket: no finite upper edge to interpolate to.
                return bounds.last().copied().unwrap_or(0.0);
            }
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            let upper = bounds[i];
            if in_bucket <= 0.0 {
                return upper;
            }
            let fraction = ((rank - cumulative) / in_bucket).clamp(0.0, 1.0);
            return lower + fraction * (upper - lower);
        }
        cumulative += in_bucket;
    }
    bounds.last().copied().unwrap_or(0.0)
}

/// Counter-style u64 → f64 for quantile arithmetic; counts beyond 2^53
/// lose precision but cannot panic or wrap.
#[allow(clippy::cast_precision_loss)]
fn total_as_f64(n: u64) -> f64 {
    n as f64
}

/// A registered metric of any kind.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A sharded metric registry. Most code uses the process-wide [`global`]
/// registry through the recording macros; tests build private instances.
#[derive(Debug)]
pub struct Registry {
    shards: [Mutex<HashMap<&'static str, Metric>>; SHARD_COUNT],
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard_for(&self, name: &str) -> &Mutex<HashMap<&'static str, Metric>> {
        // Truncation is harmless: only the low bits select the shard.
        #[allow(clippy::cast_possible_truncation)]
        let hash = fnv1a(name.as_bytes()) as usize;
        &self.shards[hash % SHARD_COUNT]
    }

    /// Gets or registers the counter `name`.
    ///
    /// If `name` is already registered as a *different* kind, a detached
    /// counter is returned so the caller still gets a working handle; it
    /// will not appear in snapshots (kind collisions are a programming
    /// error, but telemetry must never panic the host process).
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut shard = self.shard_for(name).lock();
        let metric = shard
            .entry(name)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::new()),
        }
    }

    /// Gets or registers the gauge `name` (collision rules as
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut shard = self.shard_for(name).lock();
        let metric = shard
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Gets or registers the histogram `name` with [`default_bounds`]
    /// (collision rules as [`Registry::counter`]).
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, Histogram::new)
    }

    /// Gets or registers the histogram `name` with explicit bounds. The
    /// bounds only apply on first registration; later callers share the
    /// originally registered buckets.
    pub fn histogram_with_bounds(&self, name: &'static str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, || Histogram::with_bounds(bounds.to_vec()))
    }

    fn histogram_with<F: FnOnce() -> Histogram>(
        &self,
        name: &'static str,
        make: F,
    ) -> Arc<Histogram> {
        let mut shard = self.shard_for(name).lock();
        let metric = shard
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Arc::new(make())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Snapshots every registered metric, sorted by name. Span data is
    /// not included here — [`Snapshot::capture`] merges the profile tree
    /// from the span aggregator.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for shard in &self.shards {
            for (&name, metric) in shard.lock().iter() {
                match metric {
                    Metric::Counter(c) => counters.push(CounterSnapshot {
                        name: name.to_string(),
                        value: c.get(),
                    }),
                    Metric::Gauge(g) => gauges.push(GaugeSnapshot {
                        name: name.to_string(),
                        value: g.get(),
                    }),
                    Metric::Histogram(h) => histograms.push(h.snapshot(name)),
                }
            }
        }
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot {
            counters,
            gauges,
            histograms,
            spans: Vec::new(),
        }
    }

    /// Rolls every metric of `other` up into this registry: counters
    /// add, gauges take the other registry's last value, and histograms
    /// merge bucket-by-bucket (registered here on first sight with the
    /// other histogram's bounds). A histogram whose bounds disagree with
    /// an already-registered namesake is skipped rather than corrupting
    /// buckets — the same never-panic posture as kind collisions.
    ///
    /// `other` must be a distinct registry (per-shard workers roll up
    /// into the global one); absorbing a registry into itself would
    /// self-deadlock on the shard locks.
    pub fn absorb(&self, other: &Registry) {
        for shard in &other.shards {
            for (&name, metric) in shard.lock().iter() {
                match metric {
                    Metric::Counter(c) => self.counter(name).add(c.get()),
                    Metric::Gauge(g) => self.gauge(name).set(g.get()),
                    Metric::Histogram(h) => {
                        self.histogram_with_bounds(name, h.bounds()).merge(h);
                    }
                }
            }
        }
    }

    /// Removes every registered metric (test hook).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide registry used by the recording macros.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// FNV-1a over the metric name; cheap, stable shard selection.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Stripe index for the calling thread (stable per thread, round-robin
/// across threads).
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPE_COUNT;
    }
    STRIPE.with(|s| *s)
}

/// A per-call-site lazily resolved counter handle, for use in statics.
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// Creates an unresolved handle for `name`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Resolves (registering on first use) and returns the counter.
    pub fn get(&self) -> &Counter {
        self.cell.get_or_init(|| global().counter(self.name))
    }
}

/// A per-call-site lazily resolved gauge handle, for use in statics.
#[derive(Debug)]
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    /// Creates an unresolved handle for `name`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Resolves (registering on first use) and returns the gauge.
    pub fn get(&self) -> &Gauge {
        self.cell.get_or_init(|| global().gauge(self.name))
    }
}

/// A per-call-site lazily resolved histogram handle, for use in statics.
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// Creates an unresolved handle for `name`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Resolves (registering on first use) and returns the histogram.
    pub fn get(&self) -> &Histogram {
        self.cell.get_or_init(|| global().histogram(self.name))
    }
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Counter value at capture time.
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Gauge value at capture time.
    pub value: f64,
}

/// Snapshot of one histogram, including derived quantiles.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries; last is `+Inf`).
    pub bucket_counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// A full metric + span snapshot, ready for the exporters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// The span profile tree, sorted by path.
    pub spans: Vec<crate::span::SpanNode>,
}

impl Snapshot {
    /// Captures the [`global`] registry plus the span profile tree.
    #[must_use]
    pub fn capture() -> Snapshot {
        let mut snap = global().snapshot();
        snap.spans = crate::span::profile();
        snap
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("t_counter");
        c.add(3);
        c.inc();
        assert_eq!(r.counter("t_counter").get(), 4);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = r.gauge("t_gauge");
        g.set(2.5);
        assert!((r.gauge("t_gauge").get() - 2.5).abs() < 1e-15);
    }

    #[test]
    fn kind_collision_returns_detached_metric() {
        let r = Registry::new();
        let _c = r.counter("mixed");
        let g = r.gauge("mixed");
        g.set(9.0);
        // The registered metric is still the counter; the detached gauge
        // does not show up in snapshots.
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 100.0, f64::NAN] {
            h.observe(v);
        }
        let s = h.snapshot("h");
        assert_eq!(s.count, 6);
        assert_eq!(s.bucket_counts, vec![1, 2, 1, 2]); // NaN + 100.0 overflow
        assert!((s.sum - 106.5).abs() < 1e-12);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "{s:?}");
        assert!(s.p99 <= 4.0); // overflow bucket reports the last bound
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = Histogram::new().snapshot("h");
        assert_eq!(s.count, 0);
        assert!((s.p50.abs() + s.p95.abs() + s.p99.abs()) < 1e-15);
    }

    #[test]
    fn with_bounds_sanitises() {
        let h = Histogram::with_bounds(vec![4.0, f64::NAN, 1.0, 1.0, f64::INFINITY]);
        assert_eq!(h.bounds(), &[1.0, 4.0]);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let r = Registry::new();
        r.counter("zzz").inc();
        r.counter("aaa").inc();
        r.histogram("mid").observe(1.0);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].name, "aaa");
        assert_eq!(snap.counters[1].name, "zzz");
        assert_eq!(snap.histograms[0].name, "mid");
        r.clear();
        assert!(r.snapshot().counters.is_empty());
    }

    #[test]
    fn histogram_merge_requires_identical_bounds() {
        let a = Histogram::with_bounds(vec![1.0, 2.0]);
        let b = Histogram::with_bounds(vec![1.0, 2.0]);
        let c = Histogram::with_bounds(vec![1.0, 3.0]);
        for v in [0.5, 1.5, 9.0] {
            b.observe(v);
        }
        a.observe(1.2);
        assert!(a.merge(&b));
        assert!(!a.merge(&c), "bound mismatch must refuse to merge");
        let s = a.snapshot("a");
        assert_eq!(s.count, 4);
        assert_eq!(s.bucket_counts, vec![1, 2, 1]);
        assert!((s.sum - 12.2).abs() < 1e-12, "{s:?}");
        // `b` is untouched by the roll-up.
        assert_eq!(b.snapshot("b").count, 3);
    }

    #[test]
    fn registry_absorb_rolls_up_shard_registries() {
        let global_like = Registry::new();
        global_like.counter("req_total").add(5);
        let shard = Registry::new();
        shard.counter("req_total").add(7);
        shard.gauge("lag").set(3.5);
        shard.histogram_with_bounds("lat", &[1.0, 2.0]).observe(1.5);
        global_like.absorb(&shard);
        let snap = global_like.snapshot();
        assert_eq!(snap.counters[0].value, 12);
        assert!((global_like.gauge("lag").get() - 3.5).abs() < 1e-15);
        let hist = snap.histograms.iter().find(|h| h.name == "lat").unwrap();
        assert_eq!(hist.count, 1);
        assert_eq!(hist.bounds, vec![1.0, 2.0]);
        // Absorbing twice keeps adding counter deltas (roll-up is
        // additive, not idempotent — callers absorb once per epoch).
        global_like.absorb(&shard);
        assert_eq!(global_like.counter("req_total").get(), 19);
    }

    #[test]
    fn default_bounds_are_ascending() {
        let b = default_bounds();
        assert!(b.windows(2).all(|w| w[0] < w[1]), "{b:?}");
        assert_eq!(b.len(), 30);
    }
}
