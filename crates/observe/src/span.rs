//! Hierarchical span tracing and the self-time profile tree.
//!
//! [`SpanGuard::enter`] (usually via the [`span!`](crate::span!) macro)
//! pushes a frame onto a thread-local stack; dropping the guard pops it,
//! credits the elapsed time to the frame's *path* (`parent/child/...`),
//! and subtracts child time so the aggregate distinguishes *total* from
//! *self* time. Aggregation happens in a global map keyed by path, read
//! back with [`profile`].
//!
//! When tracing is initialised ([`init_tracing`]), each finished span is
//! additionally appended to a per-thread buffer; buffers flush to a JSONL
//! trace file once they grow past a watermark and on [`flush_tracing`].
//! Lock order is always buffer → writer, never the reverse.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Flush a thread's trace buffer once it holds this many events.
const FLUSH_WATERMARK: usize = 128;

/// One live span on a thread's stack.
struct Frame {
    /// Slash-joined span path, e.g. `classify/fit/columns`.
    path: String,
    start: Instant,
    /// Nanoseconds spent in already-finished child spans.
    child_ns: u64,
}

thread_local! {
    static STACK: std::cell::RefCell<Vec<Frame>> = const { std::cell::RefCell::new(Vec::new()) };
    static TRACE_BUF: std::cell::OnceCell<Arc<Mutex<Vec<TraceEvent>>>> =
        const { std::cell::OnceCell::new() };
}

/// Aggregated timing for one span path.
#[derive(Debug, Default, Clone, Copy)]
struct SpanStat {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
}

/// One finished span, as written to the JSONL trace file.
#[derive(Debug, Clone, Serialize)]
pub struct TraceEvent {
    /// Slash-joined span path.
    pub path: String,
    /// Arbitrary but stable per-thread identifier.
    pub thread: u64,
    /// Start time in microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Global span aggregation state.
struct SpanState {
    profile: Mutex<HashMap<String, SpanStat>>,
    /// Every live per-thread trace buffer, so `flush_tracing` can drain
    /// buffers owned by other threads.
    buffers: Mutex<Vec<Arc<Mutex<Vec<TraceEvent>>>>>,
    writer: Mutex<Option<BufWriter<File>>>,
    epoch: OnceLock<Instant>,
}

fn state() -> &'static SpanState {
    static STATE: OnceLock<SpanState> = OnceLock::new();
    STATE.get_or_init(|| SpanState {
        profile: Mutex::new(HashMap::new()),
        buffers: Mutex::new(Vec::new()),
        writer: Mutex::new(None),
        epoch: OnceLock::new(),
    })
}

fn epoch() -> Instant {
    *state().epoch.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// An RAII guard timing one hierarchical span.
///
/// Created by [`SpanGuard::enter`] or the [`span!`](crate::span!) macro.
/// The measurement is recorded on drop; bind the guard to a named
/// variable so it survives to the end of the scope.
#[must_use = "binding to `_` drops the guard immediately and times nothing"]
#[derive(Debug)]
pub struct SpanGuard {
    /// `false` when telemetry was disabled at entry — drop does nothing.
    armed: bool,
}

impl SpanGuard {
    /// Opens a span named `name`, nested under the calling thread's
    /// innermost open span (if any).
    pub fn enter(name: &str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { armed: false };
        }
        // Touch the epoch before the frame's start so start offsets are
        // non-negative even for the very first span.
        let _ = epoch();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{}/{}", parent.path, name),
                None => name.to_string(),
            };
            stack.push(Frame {
                path,
                start: Instant::now(),
                child_ns: 0,
            });
        });
        SpanGuard { armed: true }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let Some(frame) = STACK.with(|stack| stack.borrow_mut().pop()) else {
            // reset_profile() cleared the stack under us; nothing to record.
            return;
        };
        let total_ns = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let self_ns = total_ns.saturating_sub(frame.child_ns);
        STACK.with(|stack| {
            if let Some(parent) = stack.borrow_mut().last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(total_ns);
            }
        });
        {
            let mut profile = state().profile.lock();
            let stat = profile.entry(frame.path.clone()).or_default();
            stat.calls += 1;
            stat.total_ns = stat.total_ns.saturating_add(total_ns);
            stat.self_ns = stat.self_ns.saturating_add(self_ns);
        }
        if state().writer.lock().is_some() {
            let start_us = u64::try_from((frame.start - epoch()).as_micros()).unwrap_or(u64::MAX);
            record_trace(TraceEvent {
                path: frame.path,
                thread: thread_id(),
                start_us,
                dur_us: total_ns / 1_000,
            });
        }
    }
}

/// Appends to the calling thread's trace buffer, flushing past the
/// watermark.
fn record_trace(event: TraceEvent) {
    let buf = TRACE_BUF.with(|cell| {
        Arc::clone(cell.get_or_init(|| {
            let buf = Arc::new(Mutex::new(Vec::new()));
            state().buffers.lock().push(Arc::clone(&buf));
            buf
        }))
    });
    let drained = {
        let mut buf = buf.lock();
        buf.push(event);
        if buf.len() >= FLUSH_WATERMARK {
            std::mem::take(&mut *buf)
        } else {
            Vec::new()
        }
    };
    if !drained.is_empty() {
        write_events(&drained);
    }
}

/// Serialises events to the trace writer, if one is installed.
fn write_events(events: &[TraceEvent]) {
    let mut writer = state().writer.lock();
    if let Some(w) = writer.as_mut() {
        for event in events {
            let line = serde_json::to_string(event).unwrap_or_default();
            let _ = writeln!(w, "{line}");
        }
    }
}

/// Starts streaming finished spans as JSONL to `path` (one event per
/// line). Replaces any previously installed trace writer.
///
/// # Errors
/// Returns the I/O error if the file cannot be created.
pub fn init_tracing(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *state().writer.lock() = Some(BufWriter::new(file));
    Ok(())
}

/// Drains every thread's trace buffer into the trace file and flushes it.
/// A no-op when tracing was never initialised.
pub fn flush_tracing() {
    let buffers: Vec<Arc<Mutex<Vec<TraceEvent>>>> =
        state().buffers.lock().iter().map(Arc::clone).collect();
    for buf in buffers {
        let drained = std::mem::take(&mut *buf.lock());
        if !drained.is_empty() {
            write_events(&drained);
        }
    }
    let mut writer = state().writer.lock();
    if let Some(w) = writer.as_mut() {
        let _ = w.flush();
    }
}

/// One node of the self-time profile tree (flattened; the hierarchy is
/// encoded in the slash-joined `path`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanNode {
    /// Slash-joined span path, e.g. `classify/fit`.
    pub path: String,
    /// Number of completed spans at this path.
    pub calls: u64,
    /// Wall time including children, in seconds.
    pub total_seconds: f64,
    /// Wall time excluding children, in seconds.
    pub self_seconds: f64,
}

/// Returns the aggregated profile tree, sorted by path (so children sort
/// directly under their parents).
#[must_use]
pub fn profile() -> Vec<SpanNode> {
    let profile = state().profile.lock();
    let mut nodes: Vec<SpanNode> = profile
        .iter()
        .map(|(path, stat)| SpanNode {
            path: path.clone(),
            calls: stat.calls,
            total_seconds: ns_to_seconds(stat.total_ns),
            self_seconds: ns_to_seconds(stat.self_ns),
        })
        .collect();
    nodes.sort_by(|a, b| a.path.cmp(&b.path));
    nodes
}

/// Nanosecond count → seconds; precision loss beyond 2^53 ns (~104 days)
/// is acceptable for display.
#[allow(clippy::cast_precision_loss)]
fn ns_to_seconds(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Clears the aggregated profile and the calling thread's span stack
/// (test hook). Open guards on *other* threads keep timing; their frames
/// simply re-create entries when they close.
pub fn reset_profile() {
    state().profile.lock().clear();
    STACK.with(|stack| stack.borrow_mut().clear());
}

#[cfg(test)]
#[cfg(feature = "enabled")]
mod tests {
    use super::*;

    /// Span tests share the global profile map, so they run under one
    /// lock to avoid cross-test interference.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn nesting_builds_paths_and_self_time() {
        let _l = locked();
        reset_profile();
        {
            let _outer = SpanGuard::enter("outer_a");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = SpanGuard::enter("inner_a");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let nodes = profile();
        let outer = nodes.iter().find(|n| n.path == "outer_a").unwrap();
        let inner = nodes.iter().find(|n| n.path == "outer_a/inner_a").unwrap();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.total_seconds >= inner.total_seconds);
        assert!(outer.self_seconds <= outer.total_seconds);
        // Outer's self time excludes inner's total time.
        assert!(outer.self_seconds <= outer.total_seconds - inner.total_seconds + 1e-3);
    }

    #[test]
    fn repeated_spans_accumulate_calls() {
        let _l = locked();
        reset_profile();
        for _ in 0..5 {
            let _g = SpanGuard::enter("repeat_a");
        }
        let nodes = profile();
        let node = nodes.iter().find(|n| n.path == "repeat_a").unwrap();
        assert_eq!(node.calls, 5);
    }

    #[test]
    fn tracing_writes_parseable_jsonl() {
        let _l = locked();
        reset_profile();
        let dir = std::env::temp_dir().join("udm_observe_span_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        init_tracing(&path).unwrap();
        {
            let _g = SpanGuard::enter("traced_a");
        }
        flush_tracing();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
        assert!(!lines.is_empty());
        for line in lines {
            let value = serde_json::parse_value(line).unwrap();
            let entries = match value {
                serde::Value::Map(entries) => entries,
                other => panic!("expected object, got {other:?}"),
            };
            assert!(entries.iter().any(|(k, _)| k == "path"));
            assert!(entries.iter().any(|(k, _)| k == "dur_us"));
        }
        // Detach the writer so later tests don't keep appending here.
        *state().writer.lock() = None;
        let _ = std::fs::remove_dir_all(&dir);
    }
}
