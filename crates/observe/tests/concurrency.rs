//! Concurrency: hammer one histogram from 8 rayon threads and check the
//! merged totals are exact and the quantiles are ordered.

#![cfg(feature = "enabled")]

use rayon::prelude::*;
use udm_observe::Histogram;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn histogram_exact_count_under_contention() {
    let h = Histogram::with_bounds(vec![0.001, 0.01, 0.1, 1.0, 10.0]);
    (0..THREADS).into_par_iter().for_each(|t| {
        for i in 0..PER_THREAD {
            // Deterministic values spread across several buckets.
            let v = match (t as u64 + i) % 5 {
                0 => 0.0005,
                1 => 0.005,
                2 => 0.05,
                3 => 0.5,
                _ => 5.0,
            };
            h.observe(v);
        }
    });
    let snap = h.snapshot("contended");
    assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
    let bucket_total: u64 = snap.bucket_counts.iter().sum();
    assert_eq!(bucket_total, snap.count);
    assert!(
        snap.p50 <= snap.p95 && snap.p95 <= snap.p99,
        "quantiles out of order: p50={} p95={} p99={}",
        snap.p50,
        snap.p95,
        snap.p99
    );
    // All values are finite, so the sum must equal the exact total.
    let expected_sum: f64 = (0..THREADS as u64)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (t + i) % 5))
        .map(|m| match m {
            0 => 0.0005,
            1 => 0.005,
            2 => 0.05,
            3 => 0.5,
            _ => 5.0,
        })
        .sum();
    assert!(
        (snap.sum - expected_sum).abs() < 1e-6 * expected_sum.abs(),
        "sum {} != expected {}",
        snap.sum,
        expected_sum
    );
}

#[test]
fn counter_exact_under_contention() {
    let registry = udm_observe::Registry::new();
    let c = registry.counter("contended_total");
    (0..THREADS).into_par_iter().for_each(|_| {
        for _ in 0..PER_THREAD {
            c.inc();
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
}
