//! Disabled-mode macros must be no-ops: no registry entries, no span
//! profile entries.
//!
//! This lives in its own integration-test binary because it flips the
//! process-wide runtime switch; sharing a binary with tests that assert
//! recorded counts would race.

#[test]
fn runtime_disabled_macros_create_no_registry_entries() {
    udm_observe::set_enabled(false);
    udm_observe::counter_add!("disabled_counter_total", 7);
    udm_observe::counter_inc!("disabled_inc_total");
    udm_observe::gauge_set!("disabled_gauge", 3.5);
    udm_observe::histogram_observe!("disabled_hist", 0.25);
    {
        let _span = udm_observe::span!("disabled_span");
    }
    let snapshot = udm_observe::Snapshot::capture();
    assert!(
        snapshot.is_empty(),
        "disabled macros leaked registry entries: {snapshot:?}"
    );

    // Re-enabling records again (when the feature is compiled in).
    udm_observe::set_enabled(true);
    udm_observe::counter_add!("reenabled_counter_total", 2);
    let snapshot = udm_observe::Snapshot::capture();
    if cfg!(feature = "enabled") {
        assert_eq!(snapshot.counters.len(), 1);
        assert_eq!(snapshot.counters[0].name, "reenabled_counter_total");
        assert_eq!(snapshot.counters[0].value, 2);
    } else {
        assert!(snapshot.is_empty());
    }
}
