//! Golden-file test for the Prometheus text exporter: a fixed snapshot
//! must render byte-for-byte identically to the checked-in exposition.

use udm_observe::span::SpanNode;
use udm_observe::{to_prometheus, Registry};

const GOLDEN: &str = include_str!("golden/prometheus.txt");

#[test]
fn prometheus_export_matches_golden_file() {
    let registry = Registry::new();
    registry.counter("golden_kernel_evals_total").add(1200);
    registry.counter("golden_cache_hits_total").add(9);
    registry.gauge("golden_quarantine_len").set(4.0);
    let h = registry.histogram_with_bounds("golden_assign_distance", &[0.5, 1.0, 2.0]);
    for v in [0.1, 0.4, 0.9, 1.5, 1.6, 4.75] {
        h.observe(v);
    }
    let mut snapshot = registry.snapshot();
    snapshot.spans = vec![
        SpanNode {
            path: "classify".to_string(),
            calls: 1,
            total_seconds: 1.0,
            self_seconds: 0.25,
        },
        SpanNode {
            path: "classify/fit".to_string(),
            calls: 3,
            total_seconds: 0.75,
            self_seconds: 0.75,
        },
    ];
    let rendered = to_prometheus(&snapshot);
    assert_eq!(
        rendered, GOLDEN,
        "Prometheus exposition drifted from tests/golden/prometheus.txt"
    );
}
