//! Request batching for density queries.
//!
//! Building the per-query kernel-column cache (`KernelColumns`) is the
//! dominant cost of a density request — one full-dimensional pass over
//! every pseudo-point. Under concurrent load many in-flight requests
//! ask about the *same* query point (hot keys), so the daemon funnels
//! density work through a single batching worker: the worker wakes on
//! the first queued job, drains everything that has piled up behind it
//! ("natural batching" — no fixed delay unless a window is configured),
//! deduplicates the batch by exact query identity, builds each unique
//! column cache once and answers every duplicate from it. Results are
//! bit-identical to the one-at-a-time path because the arithmetic is
//! the same — only redundant cache builds are elided.

use crate::snapshot::SnapshotStore;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;
use udm_core::{Result, Subspace, UdmError};
use udm_kde::{DensityBackend, KernelColumns};

/// Batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Extra gathering delay after the first job arrives. Zero (the
    /// default) means pure natural batching: coalesce whatever is
    /// already queued, never trade latency for batch size.
    pub window: Duration,
    /// Largest batch drained at once.
    pub max_batch: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            window: Duration::ZERO,
            max_batch: 64,
        }
    }
}

/// What a density job returns to its submitter.
#[derive(Debug, Clone)]
pub struct DensityReply {
    /// The density value (bit-identical to an unbatched evaluation).
    pub density: f64,
    /// Whether the columnar fast path served the query.
    pub columnar: bool,
    /// How many jobs were coalesced into the batch that answered this.
    pub batch_size: usize,
    /// Unique column caches the batch built (≤ `batch_size`).
    pub unique_builds: usize,
}

struct Job {
    values: Vec<f64>,
    errors: Option<Vec<f64>>,
    subspace: Subspace,
    reply: SyncSender<Result<DensityReply>>,
}

/// Exact query identity: bit patterns of the values and errors. Two
/// jobs share a column cache iff they would build bit-identical caches.
#[derive(PartialEq, Eq, Hash)]
struct QueryKey {
    values: Vec<u64>,
    errors: Option<Vec<u64>>,
}

impl QueryKey {
    fn of(values: &[f64], errors: Option<&[f64]>) -> Self {
        QueryKey {
            values: values.iter().map(|v| v.to_bits()).collect(),
            errors: errors.map(|e| e.iter().map(|v| v.to_bits()).collect()),
        }
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The shared job queue and its worker entry point.
pub struct BatchQueue {
    state: Mutex<QueueState>,
    wake: Condvar,
    config: BatchConfig,
}

impl BatchQueue {
    /// Creates an empty queue.
    pub fn new(config: BatchConfig) -> Self {
        BatchQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            config,
        }
    }

    /// Submits one density query and blocks until the worker answers.
    ///
    /// # Errors
    ///
    /// The evaluation error the unbatched path would have produced, or
    /// [`UdmError::Io`] when the worker has shut down.
    pub fn submit(
        &self,
        values: Vec<f64>,
        errors: Option<Vec<f64>>,
        subspace: Subspace,
    ) -> Result<DensityReply> {
        let (tx, rx) = sync_channel(1);
        {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if state.shutdown {
                return Err(UdmError::Io("batch worker is shut down".into()));
            }
            state.jobs.push_back(Job {
                values,
                errors,
                subspace,
                reply: tx,
            });
        }
        self.wake.notify_one();
        rx.recv()
            .map_err(|_| UdmError::Io("batch worker dropped the job".into()))?
    }

    /// Marks the queue shut down and wakes the worker so it can drain
    /// the backlog and exit.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.shutdown = true;
        drop(state);
        self.wake.notify_all();
    }

    /// The worker loop: wake on the first job, gather the backlog,
    /// evaluate against the *current* snapshot, reply, repeat. Runs
    /// until [`BatchQueue::shutdown`] and the backlog is drained.
    pub fn run_worker(&self, store: &SnapshotStore) {
        loop {
            let batch = match self.next_batch() {
                Some(batch) => batch,
                None => return,
            };
            // The Arc keeps the generation alive for the whole batch:
            // every job in it is answered by one coherent model, through
            // the snapshot's default density backend.
            let snap = store.load().filter(|s| s.kde.is_some());
            udm_observe::histogram_observe!("udm_serve_batch_size", batch.len() as f64);
            udm_observe::counter_inc!("udm_serve_density_batches_total");
            match snap.as_ref().map(|s| s.backend()) {
                Some(Ok(Some(backend))) => evaluate_batch(backend.as_ref(), batch),
                Some(Err(err)) => {
                    for job in batch {
                        let _ = job.reply.send(Err(err.clone()));
                    }
                }
                Some(Ok(None)) | None => {
                    for job in batch {
                        let _ = job.reply.send(Err(UdmError::EmptyDataset));
                    }
                }
            }
        }
    }

    /// Blocks for the next non-empty batch; `None` means shut down and
    /// fully drained.
    fn next_batch(&self) -> Option<Vec<Job>> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.jobs.is_empty() {
            if state.shutdown {
                return None;
            }
            state = self
                .wake
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if !self.config.window.is_zero() && !state.shutdown {
            // Optional gathering window: trade a bounded delay for a
            // larger batch. Dropping the lock lets submitters pile on.
            drop(state);
            std::thread::sleep(self.config.window);
            state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        }
        let take = state.jobs.len().min(self.config.max_batch);
        Some(state.jobs.drain(..take).collect())
    }
}

/// Evaluates one batch: one `KernelColumns` build per unique query, one
/// density evaluation per unique (query, subspace), every duplicate
/// answered from the memo. Per-job errors are delivered per job, so a
/// poisoned query cannot fail its neighbors.
///
/// With a columnar backend (`Exact`, `Coreset`) the arithmetic is the
/// same column build + evaluate the solo handler performs, so results
/// stay bit-identical to the unbatched path. A backend without a
/// columnar form (`Hbe` returns `Ok(None)`) is evaluated per unique
/// (query, subspace) through [`DensityBackend::density_subspace`] —
/// still deduplicated, just without a shared column cache.
fn evaluate_batch(backend: &dyn DensityBackend, batch: Vec<Job>) {
    let batch_size = batch.len();
    let mut columns: Vec<Result<Option<KernelColumns>>> = Vec::new();
    let mut index: HashMap<QueryKey, usize> = HashMap::new();
    let mut memo: HashMap<(usize, u64), f64> = HashMap::new();
    for job in &batch {
        let key = QueryKey::of(&job.values, job.errors.as_deref());
        if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(key) {
            let built = backend.kernel_columns(&job.values, job.errors.as_deref());
            slot.insert(columns.len());
            columns.push(built);
        }
    }
    let unique_builds = columns.len();
    udm_observe::counter_add!(
        "udm_serve_batch_dedup_hits_total",
        (batch_size - unique_builds) as u64
    );
    for job in batch {
        let key = QueryKey::of(&job.values, job.errors.as_deref());
        let result = match index.get(&key).map(|&slot| (slot, &columns[slot])) {
            Some((slot, Ok(cached))) => {
                let memo_key = (slot, job.subspace.bits());
                let (density, columnar) = match memo.get(&memo_key) {
                    Some(&d) => (Ok(d), cached.as_ref().is_some_and(|c| c.is_columnar())),
                    None => {
                        let (d, columnar) = match cached {
                            Some(cols) => (cols.density(job.subspace), cols.is_columnar()),
                            None => (
                                backend.density_subspace(
                                    &job.values,
                                    job.errors.as_deref(),
                                    job.subspace,
                                ),
                                false,
                            ),
                        };
                        if let Ok(v) = d {
                            memo.insert(memo_key, v);
                        }
                        (d, columnar)
                    }
                };
                density.map(|density| DensityReply {
                    density,
                    columnar,
                    batch_size,
                    unique_builds,
                })
            }
            Some((_, Err(e))) => Err(e.clone()),
            None => Err(UdmError::Io("batch index lost a job".into())),
        };
        let _ = job.reply.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{IngestCounters, ModelSnapshot};
    use std::sync::Arc;
    use udm_core::UncertainPoint;
    use udm_microcluster::shard::MicroClusterModel;
    use udm_microcluster::{MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

    fn store_with_model() -> Arc<SnapshotStore> {
        let mut m = MicroClusterMaintainer::new(3, MaintainerConfig::new(8)).unwrap();
        for i in 0..40u64 {
            let v = i as f64 * 0.25;
            let p = UncertainPoint::new(vec![v, 1.0 - v, v * v * 0.1], vec![0.2, 0.1, 0.05])
                .unwrap()
                .with_timestamp(i);
            m.insert(&p).unwrap();
        }
        let model = MicroClusterModel::from_clusters(3, m.into_clusters()).unwrap();
        // `.expect`, not `.ok()`: a fit failure here is a broken test
        // fixture and must fail loudly, not serve a KDE-less snapshot.
        let kde = Some(
            MicroClusterKde::fit(model.clusters(), udm_kde::KdeConfig::error_adjusted())
                .expect("test model must fit"),
        );
        let store = SnapshotStore::new();
        store.publish(ModelSnapshot::new(
            1,
            model,
            kde,
            None,
            1.0,
            IngestCounters::default(),
            40,
        ));
        Arc::new(store)
    }

    fn spawn_worker(
        queue: &Arc<BatchQueue>,
        store: &Arc<SnapshotStore>,
    ) -> std::thread::JoinHandle<()> {
        let queue = Arc::clone(queue);
        let store = Arc::clone(store);
        std::thread::spawn(move || queue.run_worker(&store))
    }

    #[test]
    fn batched_matches_one_at_a_time_bitwise() {
        let store = store_with_model();
        let snap = store.load().unwrap();
        let kde = snap.kde.as_ref().unwrap();
        let queries: Vec<(Vec<f64>, Option<Vec<f64>>, Subspace)> = vec![
            (vec![1.0, 0.5, 0.1], None, Subspace::full(3).unwrap()),
            (
                vec![1.0, 0.5, 0.1],
                None,
                Subspace::from_dims(&[0, 2]).unwrap(),
            ),
            (
                vec![2.0, -0.5, 0.4],
                Some(vec![0.3, 0.3, 0.3]),
                Subspace::full(3).unwrap(),
            ),
            (vec![1.0, 0.5, 0.1], None, Subspace::full(3).unwrap()),
        ];
        // Reference: the unbatched path (same build + evaluate calls the
        // solo handler makes).
        let reference: Vec<f64> = queries
            .iter()
            .map(|(v, e, s)| {
                kde.kernel_columns(v, e.as_deref())
                    .unwrap()
                    .density(*s)
                    .unwrap()
            })
            .collect();

        let queue = Arc::new(BatchQueue::new(BatchConfig {
            window: Duration::from_millis(20),
            max_batch: 64,
        }));
        let worker = spawn_worker(&queue, &store);
        let clients: Vec<_> = queries
            .iter()
            .cloned()
            .map(|(v, e, s)| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || queue.submit(v, e, s).unwrap())
            })
            .collect();
        let got: Vec<DensityReply> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        queue.shutdown();
        worker.join().unwrap();

        for (reply, want) in got.iter().zip(reference.iter()) {
            assert_eq!(
                reply.density.to_bits(),
                want.to_bits(),
                "batched result drifted from the solo path"
            );
        }
        // The gathering window coalesced all four concurrent jobs, and
        // the two duplicate queries shared one column build.
        if got.iter().any(|r| r.batch_size == 4) {
            let full = got.iter().find(|r| r.batch_size == 4).unwrap();
            assert_eq!(full.unique_builds, 2, "dedup missed duplicate queries");
        }
    }

    #[test]
    fn shutdown_rejects_new_jobs_and_drains() {
        let store = store_with_model();
        let queue = Arc::new(BatchQueue::new(BatchConfig::default()));
        let worker = spawn_worker(&queue, &store);
        let reply = queue
            .submit(vec![1.0, 0.5, 0.1], None, Subspace::full(3).unwrap())
            .unwrap();
        assert!(reply.density.is_finite());
        queue.shutdown();
        worker.join().unwrap();
        assert!(queue
            .submit(vec![1.0, 0.5, 0.1], None, Subspace::full(3).unwrap())
            .is_err());
    }

    #[test]
    fn empty_store_yields_empty_dataset_error() {
        let store = Arc::new(SnapshotStore::new());
        let queue = Arc::new(BatchQueue::new(BatchConfig::default()));
        let worker = spawn_worker(&queue, &store);
        let got = queue.submit(vec![1.0], None, Subspace::full(1).unwrap());
        assert!(matches!(got, Err(UdmError::EmptyDataset)));
        queue.shutdown();
        worker.join().unwrap();
    }
}
