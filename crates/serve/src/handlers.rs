//! Request handlers: JSON in, JSON out, against the current snapshot.
//!
//! Every data endpoint validates its inputs up front
//! (`ensure_finite_slice` — the vendored JSON deserializer maps a
//! missing `f64` to NaN, so a handler that skipped validation would
//! silently poison the kernel arithmetic), resolves the snapshot once,
//! and evaluates lock-free against it.

use crate::batch::BatchQueue;
use crate::snapshot::{ModelSnapshot, SnapshotStore};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use udm_core::num::ensure_finite_slice;
use udm_core::{Result, Subspace, UdmError};
use udm_kde::{BackendSpec, DensityBackend};

/// A `/density` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DensityRequest {
    /// Query point values.
    pub values: Vec<f64>,
    /// Optional per-dimension query errors ψ(x).
    pub errors: Option<Vec<f64>>,
    /// Subspace dimensions (absent = full space).
    pub dims: Option<Vec<usize>>,
    /// Per-request density backend override
    /// (`exact | coreset:EPS | hbe:EPS[,TAU]`; absent = the snapshot's
    /// default). Overridden requests are answered inline — they never
    /// enter the batch queue, so default-backend batching stays
    /// bit-identical.
    pub backend: Option<String>,
}

/// A `/density` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DensityResponse {
    /// The density estimate.
    pub density: f64,
    /// Snapshot generation that answered.
    pub generation: u64,
    /// Batch size this query was coalesced into (1 = unbatched).
    pub batch_size: usize,
    /// Whether the columnar fast path served the query.
    pub columnar: bool,
}

/// A `/classify` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifyRequest {
    /// Query point values.
    pub values: Vec<f64>,
    /// Optional per-dimension errors ψ(x).
    pub errors: Option<Vec<f64>>,
    /// Per-request density backend override (absent = the classifier's
    /// runtime default).
    pub backend: Option<String>,
}

/// One class score entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreEntry {
    /// Class label id.
    pub label: u32,
    /// Normalized full-space score.
    pub score: f64,
}

/// A `/classify` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifyResponse {
    /// Predicted label id.
    pub label: u32,
    /// Whether the fallback policy decided.
    pub used_fallback: bool,
    /// Candidate subspaces evaluated by the roll-up.
    pub candidates_evaluated: usize,
    /// Non-overlapping subspaces that voted.
    pub selected: usize,
    /// Normalized class scores (shares the roll-up's column caches).
    pub scores: Vec<ScoreEntry>,
    /// Snapshot generation that answered.
    pub generation: u64,
}

/// A `/cluster` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterRequest {
    /// Query point values.
    pub values: Vec<f64>,
}

/// A `/cluster` response body: the nearest micro-cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterResponse {
    /// Index of the nearest cluster in canonical order.
    pub cluster: usize,
    /// Euclidean distance to its centroid.
    pub distance: f64,
    /// The centroid itself.
    pub centroid: Vec<f64>,
    /// Members absorbed by that cluster.
    pub points: u64,
    /// Snapshot generation that answered.
    pub generation: u64,
}

/// The `/healthz` body, served on both 200 and 503.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthzResponse {
    /// `"ok"` or `"degraded"`.
    pub status: String,
    /// Latest published generation (0 = nothing published yet).
    pub generation: u64,
    /// Shard coverage `contributing/S` of the serving model.
    pub coverage: f64,
    /// Quarantine buffer high-water mark.
    pub quarantine_high_water: u64,
    /// Terminal `ExhaustedRecord` count (retry budget spent).
    pub retry_exhausted: u64,
    /// Records that arrived at the policy engine.
    pub arrivals: u64,
    /// Records admitted into the model (accepted + repaired + released).
    pub admitted: u64,
    /// Points absorbed by the serving model.
    pub points: u64,
    /// FNV-1a digest of the aggregate CFT, hex-encoded — the chaos
    /// drill's bit-identity probe.
    pub model_fingerprint: String,
    /// Seconds since the snapshot was published.
    pub snapshot_age_seconds: f64,
    /// Whether the classifier endpoint is available.
    pub classifier: bool,
    /// The snapshot's default density backend spec (empty until the
    /// first snapshot is published).
    pub backend: String,
}

/// Maps an evaluation error to its HTTP status: caller mistakes are
/// 400s, "not ready yet" is a 503, everything else is a 500.
pub fn status_for(err: &UdmError) -> u16 {
    match err {
        UdmError::DimensionMismatch { .. }
        | UdmError::InvalidValue { .. }
        | UdmError::DimensionOutOfRange { .. }
        | UdmError::SubspaceCapacityExceeded { .. }
        | UdmError::UnknownLabel(_)
        | UdmError::InvalidConfig(_)
        | UdmError::Parse { .. } => 400,
        UdmError::EmptyDataset => 503,
        _ => 500,
    }
}

fn snapshot_or_unready(store: &SnapshotStore) -> Result<Arc<ModelSnapshot>> {
    store.load().ok_or(UdmError::EmptyDataset)
}

fn subspace_of(dims: Option<&[usize]>, dim: usize) -> Result<Subspace> {
    match dims {
        Some(dims) => Subspace::from_dims(dims),
        None => Subspace::full(dim),
    }
}

/// Evaluates one density query against a resolved backend: the
/// columnar fast path when the backend factorizes, the generic
/// `density_subspace` entry otherwise.
fn density_via_backend(
    backend: &dyn DensityBackend,
    req: &DensityRequest,
    subspace: Subspace,
    generation: u64,
) -> Result<DensityResponse> {
    if let Some(cols) = backend.kernel_columns(&req.values, req.errors.as_deref())? {
        return Ok(DensityResponse {
            density: cols.density(subspace)?,
            generation,
            batch_size: 1,
            columnar: cols.is_columnar(),
        });
    }
    Ok(DensityResponse {
        density: backend.density_subspace(&req.values, req.errors.as_deref(), subspace)?,
        generation,
        batch_size: 1,
        columnar: false,
    })
}

/// Answers a `/density` request. When a batch queue is wired in and no
/// backend override is present, the query is funneled through it (and
/// may be coalesced with concurrent requests); otherwise the snapshot's
/// backend evaluates inline. Queue and inline paths run the same
/// arithmetic under the default backend, so responses are bit-identical.
/// Per-request overrides always evaluate inline against a cached
/// backend built for that spec.
///
/// # Errors
///
/// Validation errors (400 class, including malformed backend specs),
/// [`UdmError::EmptyDataset`] before the first snapshot with data
/// (503), evaluation failures.
pub fn handle_density(
    store: &SnapshotStore,
    queue: Option<&BatchQueue>,
    req: &DensityRequest,
) -> Result<DensityResponse> {
    ensure_finite_slice("density query values", &req.values)?;
    if let Some(errors) = &req.errors {
        ensure_finite_slice("density query errors", errors)?;
        if errors.len() != req.values.len() {
            return Err(UdmError::DimensionMismatch {
                expected: req.values.len(),
                actual: errors.len(),
            });
        }
    }
    let snap = snapshot_or_unready(store)?;
    let subspace = subspace_of(req.dims.as_deref(), req.values.len())?;
    if let Some(text) = req.backend.as_deref() {
        let spec = BackendSpec::parse(text)?;
        let backend = snap.backend_for(&spec)?.ok_or(UdmError::EmptyDataset)?;
        return density_via_backend(backend.as_ref(), req, subspace, snap.generation);
    }
    if let Some(queue) = queue {
        let reply = queue.submit(req.values.clone(), req.errors.clone(), subspace)?;
        return Ok(DensityResponse {
            density: reply.density,
            generation: snap.generation,
            batch_size: reply.batch_size,
            columnar: reply.columnar,
        });
    }
    let backend = snap.backend()?.ok_or(UdmError::EmptyDataset)?;
    density_via_backend(backend.as_ref(), req, subspace, snap.generation)
}

/// Answers a `/classify` request via `classify_scored` (decision and
/// scores share one set of kernel-column caches).
///
/// # Errors
///
/// Validation errors, [`UdmError::EmptyDataset`] when no classifier is
/// loaded (unlabelled seed data or nothing published yet).
pub fn handle_classify(store: &SnapshotStore, req: &ClassifyRequest) -> Result<ClassifyResponse> {
    ensure_finite_slice("classify query values", &req.values)?;
    if let Some(errors) = &req.errors {
        ensure_finite_slice("classify query errors", errors)?;
    }
    let snap = snapshot_or_unready(store)?;
    let classifier = snap.classifier.as_ref().ok_or(UdmError::EmptyDataset)?;
    let errors = req
        .errors
        .clone()
        .unwrap_or_else(|| vec![0.0; req.values.len()]);
    let point = udm_core::UncertainPoint::new(req.values.clone(), errors)?;
    let (outcome, scores) = match req.backend.as_deref() {
        Some(text) => {
            let spec = BackendSpec::parse(text)?;
            classifier.classify_scored_with_backend(&point, &spec)?
        }
        None => classifier.classify_scored(&point)?,
    };
    Ok(ClassifyResponse {
        label: outcome.label.id(),
        used_fallback: outcome.used_fallback,
        candidates_evaluated: outcome.candidates_evaluated,
        selected: outcome.selected.len(),
        scores: scores
            .into_iter()
            .map(|(label, score)| ScoreEntry {
                label: label.id(),
                score,
            })
            .collect(),
        generation: snap.generation,
    })
}

/// Answers a `/cluster` request: nearest micro-cluster centroid by
/// Euclidean distance.
///
/// # Errors
///
/// Validation errors, [`UdmError::EmptyDataset`] while the model holds
/// no clusters.
pub fn handle_cluster(store: &SnapshotStore, req: &ClusterRequest) -> Result<ClusterResponse> {
    ensure_finite_slice("cluster query values", &req.values)?;
    let snap = snapshot_or_unready(store)?;
    if req.values.len() != snap.model.dim() {
        return Err(UdmError::DimensionMismatch {
            expected: snap.model.dim(),
            actual: req.values.len(),
        });
    }
    let mut best: Option<(usize, f64, Vec<f64>, u64)> = None;
    for (i, c) in snap.model.clusters().iter().enumerate() {
        let Some(centroid) = c.centroid() else {
            continue;
        };
        let d2: f64 = centroid
            .iter()
            .zip(req.values.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let closer = match &best {
            Some((_, bd, _, _)) => d2 < *bd,
            None => true,
        };
        if closer {
            best = Some((i, d2, centroid, c.n()));
        }
    }
    let (cluster, d2, centroid, points) = best.ok_or(UdmError::EmptyDataset)?;
    Ok(ClusterResponse {
        cluster,
        distance: d2.sqrt(),
        centroid,
        points,
        generation: snap.generation,
    })
}

/// Builds the `/healthz` body and its status code. Degrades to 503
/// when nothing is published yet or shard coverage has fallen below
/// `min_coverage` (a dead fault domain past its staleness budget).
pub fn handle_healthz(store: &SnapshotStore, min_coverage: f64) -> (u16, HealthzResponse) {
    match store.load() {
        None => (
            503,
            HealthzResponse {
                status: "degraded".into(),
                generation: 0,
                coverage: 0.0,
                quarantine_high_water: 0,
                retry_exhausted: 0,
                arrivals: 0,
                admitted: 0,
                points: 0,
                model_fingerprint: String::new(),
                snapshot_age_seconds: 0.0,
                classifier: false,
                backend: String::new(),
            },
        ),
        Some(snap) => {
            let healthy = snap.coverage >= min_coverage;
            let body = HealthzResponse {
                status: if healthy { "ok" } else { "degraded" }.into(),
                generation: snap.generation,
                coverage: snap.coverage,
                quarantine_high_water: snap.counters.quarantine_high_water,
                retry_exhausted: snap.counters.retry_exhausted,
                arrivals: snap.counters.arrivals,
                admitted: snap.counters.admitted(),
                points: snap.model.total_points(),
                model_fingerprint: format!("{:016x}", snap.model_fingerprint()),
                snapshot_age_seconds: snap.age_seconds(),
                classifier: snap.classifier.is_some(),
                backend: snap.backend_spec.to_string(),
            };
            (if healthy { 200 } else { 503 }, body)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::IngestCounters;
    use udm_classify::{ClassifierConfig, DensityClassifier};
    use udm_core::{ClassLabel, UncertainPoint};
    use udm_data::{GaussianClassSpec, MixtureGenerator};
    use udm_microcluster::shard::MicroClusterModel;
    use udm_microcluster::{MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

    fn labelled_store() -> SnapshotStore {
        let g = MixtureGenerator::new(
            2,
            vec![
                GaussianClassSpec {
                    mean: vec![0.0, 0.0],
                    std: vec![1.0, 1.0],
                    weight: 1.0,
                },
                GaussianClassSpec {
                    mean: vec![5.0, 5.0],
                    std: vec![1.0, 1.0],
                    weight: 1.0,
                },
            ],
        )
        .unwrap();
        let train = g.generate(200, 7);
        let classifier =
            DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(30)).unwrap();
        let mut m = MicroClusterMaintainer::new(2, MaintainerConfig::new(10)).unwrap();
        for (i, p) in train.points().iter().enumerate() {
            m.insert(&p.clone().with_timestamp(i as u64)).unwrap();
        }
        let model = MicroClusterModel::from_clusters(2, m.into_clusters()).unwrap();
        let kde = MicroClusterKde::fit(model.clusters(), udm_kde::KdeConfig::error_adjusted()).ok();
        let store = SnapshotStore::new();
        store.publish(crate::snapshot::ModelSnapshot::new(
            3,
            model,
            kde,
            Some(std::sync::Arc::new(classifier)),
            1.0,
            IngestCounters::default(),
            200,
        ));
        store
    }

    #[test]
    fn density_inline_answers_and_validates() {
        let store = labelled_store();
        let ok = handle_density(
            &store,
            None,
            &DensityRequest {
                values: vec![0.5, 0.5],
                errors: None,
                dims: None,
                backend: None,
            },
        )
        .unwrap();
        assert!(ok.density.is_finite() && ok.density > 0.0);
        assert_eq!(ok.batch_size, 1);
        assert_eq!(ok.generation, 3);

        let nan = handle_density(
            &store,
            None,
            &DensityRequest {
                values: vec![f64::NAN, 0.0],
                errors: None,
                dims: None,
                backend: None,
            },
        );
        assert!(nan.is_err());
        assert_eq!(status_for(&nan.unwrap_err()), 400);

        let lopsided = handle_density(
            &store,
            None,
            &DensityRequest {
                values: vec![0.5, 0.5],
                errors: Some(vec![0.1]),
                dims: None,
                backend: None,
            },
        );
        assert!(lopsided.is_err());
    }

    #[test]
    fn density_subspace_matches_kde() {
        let store = labelled_store();
        let snap = store.load().unwrap();
        let kde = snap.kde.as_ref().unwrap();
        let want = kde
            .kernel_columns(&[1.0, 2.0], None)
            .unwrap()
            .density(Subspace::from_dims(&[1]).unwrap())
            .unwrap();
        let got = handle_density(
            &store,
            None,
            &DensityRequest {
                values: vec![1.0, 2.0],
                errors: None,
                dims: Some(vec![1]),
                backend: None,
            },
        )
        .unwrap();
        assert_eq!(got.density.to_bits(), want.to_bits());
    }

    #[test]
    fn classify_agrees_with_direct_model_call() {
        let store = labelled_store();
        let snap = store.load().unwrap();
        let classifier = snap.classifier.as_ref().unwrap();
        let x = UncertainPoint::new(vec![5.0, 4.5], vec![0.0, 0.0]).unwrap();
        let want = classifier.classify_detailed(&x).unwrap();
        let got = handle_classify(
            &store,
            &ClassifyRequest {
                values: vec![5.0, 4.5],
                errors: None,
                backend: None,
            },
        )
        .unwrap();
        assert_eq!(got.label, want.label.id());
        assert_eq!(got.used_fallback, want.used_fallback);
        assert_eq!(ClassLabel(got.label), want.label);
        assert_eq!(got.scores.len(), 2);
        let total: f64 = got.scores.iter().map(|s| s.score).sum();
        assert!((total - 1.0).abs() < 1e-9 || total.abs() < 1e-12);
    }

    #[test]
    fn density_backend_override_serves_inline() {
        let store = labelled_store();
        let base = DensityRequest {
            values: vec![0.5, 0.5],
            errors: None,
            dims: None,
            backend: None,
        };
        let default = handle_density(&store, None, &base).unwrap();

        // An explicit exact override is bit-identical to the default.
        let exact = handle_density(
            &store,
            None,
            &DensityRequest {
                backend: Some("exact".into()),
                ..base.clone()
            },
        )
        .unwrap();
        assert_eq!(exact.density.to_bits(), default.density.to_bits());
        assert!(exact.columnar);

        // Approximate overrides answer with finite positive estimates.
        for spec in ["coreset:0.05", "hbe:0.2"] {
            let got = handle_density(
                &store,
                None,
                &DensityRequest {
                    backend: Some(spec.into()),
                    ..base.clone()
                },
            )
            .unwrap();
            assert!(got.density.is_finite() && got.density > 0.0, "{spec}");
        }

        // A malformed spec is a caller mistake, not a server fault.
        let bad = handle_density(
            &store,
            None,
            &DensityRequest {
                backend: Some("coreset:nope".into()),
                ..base
            },
        );
        assert!(bad.is_err());
        assert_eq!(status_for(&bad.unwrap_err()), 400);
    }

    #[test]
    fn classify_backend_override_matches_default_for_exact() {
        let store = labelled_store();
        let base = ClassifyRequest {
            values: vec![5.0, 4.5],
            errors: None,
            backend: None,
        };
        let default = handle_classify(&store, &base).unwrap();
        let exact = handle_classify(
            &store,
            &ClassifyRequest {
                backend: Some("exact".into()),
                ..base.clone()
            },
        )
        .unwrap();
        assert_eq!(exact.label, default.label);
        for (a, b) in exact.scores.iter().zip(default.scores.iter()) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }

        // A coreset override still classifies the far mode correctly.
        let coreset = handle_classify(
            &store,
            &ClassifyRequest {
                backend: Some("coreset:0.05".into()),
                ..base
            },
        )
        .unwrap();
        assert_eq!(coreset.label, default.label);
    }

    #[test]
    fn cluster_finds_a_nearest_centroid() {
        let store = labelled_store();
        let got = handle_cluster(
            &store,
            &ClusterRequest {
                values: vec![5.0, 5.0],
            },
        )
        .unwrap();
        assert_eq!(got.centroid.len(), 2);
        assert!(got.distance.is_finite());
        assert!(got.points > 0);
        // A query at the far mode must resolve to a centroid near it.
        assert!(got.centroid[0] > 2.0, "centroid {:?}", got.centroid);
    }

    #[test]
    fn healthz_degrades_without_snapshot_and_below_coverage() {
        let empty = SnapshotStore::new();
        let (code, body) = handle_healthz(&empty, 1.0);
        assert_eq!(code, 503);
        assert_eq!(body.status, "degraded");

        let store = labelled_store();
        let (code, body) = handle_healthz(&store, 1.0);
        assert_eq!(code, 200);
        assert_eq!(body.status, "ok");
        assert_eq!(body.points, 200);
        assert!(body.classifier);
        assert_eq!(body.model_fingerprint.len(), 16);
        assert_eq!(body.backend, "exact");

        // Same store judged against an impossible coverage floor.
        let (code, body) = handle_healthz(&store, 1.5);
        assert_eq!(code, 503);
        assert_eq!(body.status, "degraded");
    }
}
