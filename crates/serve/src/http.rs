//! Minimal hand-rolled HTTP/1.1 framing.
//!
//! The workspace vendors every dependency offline, so the daemon speaks
//! just enough HTTP itself instead of pulling a server framework: one
//! request line, headers, an optional `Content-Length` body, and a
//! framed response with keep-alive support. Limits are deliberately
//! small — this is a model-serving sidecar, not a general web server.

use std::io::{Read, Write};
use std::net::TcpStream;
use udm_core::{Result, UdmError};

/// Upper bound on the request line + headers.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the sender per RFC 9112).
    pub method: String,
    /// Path component only; any `?query` suffix is split off.
    pub path: String,
    /// Raw query string after `?`, when present.
    pub query: Option<String>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection may carry another request afterwards.
    pub keep_alive: bool,
}

/// One response to frame onto the wire.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn parse_error(message: impl Into<String>) -> UdmError {
    UdmError::Parse {
        line: 1,
        message: message.into(),
    }
}

fn io_error(e: &std::io::Error) -> UdmError {
    UdmError::Io(e.to_string())
}

/// Reads one request off the stream. `Ok(None)` means the peer closed
/// the connection cleanly before sending anything (normal keep-alive
/// teardown); a timeout mid-request surfaces as [`UdmError::Io`].
///
/// # Errors
///
/// [`UdmError::Parse`] for malformed or over-limit requests,
/// [`UdmError::Io`] for transport failures.
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 2048];
    let header_end = loop {
        if let Some(pos) = find_terminator(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(parse_error("request headers exceed 8KB"));
        }
        let n = stream.read(&mut chunk).map_err(|e| io_error(&e))?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(parse_error("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| parse_error("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .ok_or_else(|| parse_error("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| parse_error("missing request target"))?;
    let version = parts.next().unwrap_or("HTTP/1.0");

    let mut content_length = 0usize;
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| parse_error("bad content-length"))?;
            } else if name == "connection" {
                keep_alive = !value.eq_ignore_ascii_case("close")
                    && (keep_alive || value.eq_ignore_ascii_case("keep-alive"));
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(parse_error("request body exceeds 1MB"));
    }

    let mut body: Vec<u8> = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| io_error(&e))?;
        if n == 0 {
            return Err(parse_error("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        keep_alive,
    }))
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Frames and writes one response.
///
/// # Errors
///
/// [`UdmError::Io`] when the peer is gone.
pub fn write_response(stream: &mut TcpStream, response: &Response, keep_alive: bool) -> Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(&response.body))
        .and_then(|()| stream.flush())
        .map_err(|e| io_error(&e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> Result<Option<Request>> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&raw).unwrap();
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let got = read_request(&mut server_side);
        writer.join().unwrap();
        got
    }

    #[test]
    fn parses_get_with_query() {
        let req = round_trip(b"GET /healthz?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query.as_deref(), Some("verbose=1"));
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_and_connection_close() {
        let req = round_trip(
            b"POST /density HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"abcd");
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(round_trip(b"").unwrap().is_none());
    }

    #[test]
    fn truncated_request_is_parse_error() {
        assert!(round_trip(b"GET /x HTTP/1.1\r\n").is_err());
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = format!(
            "POST /density HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(round_trip(raw.as_bytes()).is_err());
    }
}
