//! # udm-serve
//!
//! Long-lived serving daemon for the density-based transforms: the
//! layer that turns the one-shot CLI pipeline (fit → query → exit)
//! into an online inference stack answering `/classify`, `/density`,
//! `/cluster`, `/healthz` and `/metrics` over a minimal hand-rolled
//! HTTP/1.1 protocol — no network dependencies beyond `std::net`.
//!
//! Architecture, in one pass through a request:
//!
//! 1. **Snapshots** ([`snapshot`]): the background ingest pump
//!    periodically merges the sharded micro-cluster partials, fits a
//!    KDE over them, and publishes the result as an immutable
//!    [`ModelSnapshot`] behind an atomically swapped `Arc`. Readers
//!    clone the `Arc` and evaluate lock-free; a publication can never
//!    tear a model a reader is using.
//! 2. **Batching** ([`batch`]): concurrent `/density` queries funnel
//!    through one worker that drains whatever has queued up, dedups by
//!    exact query identity, and builds each `KernelColumns` cache once
//!    per unique query — bit-identical to one-at-a-time evaluation,
//!    minus the redundant cache builds.
//! 3. **Ingest** ([`pump`]): the PR-8 `ShardSupervisor` over the PR-3
//!    quarantine/repair policy engine, fed in chunks; each chunk ends
//!    with a refreshed snapshot generation.
//! 4. **Warm restart**: on startup over a state directory that already
//!    holds per-shard checkpoints, the pump recovers them (latest, with
//!    `.prev` fallback), serves the recovered model immediately and
//!    re-offers the stream — replay-aware drivers fast-forward the
//!    checkpointed prefix, reproducing an uninterrupted run's CFT
//!    statistics bit for bit.
//! 5. **Shutdown** ([`signal`], [`Server::shutdown_graceful`]):
//!    SIGTERM/ctrl-c latch an atomic; the server drains in-flight
//!    requests, flushes final checkpoints and reports the durable
//!    resume cursors.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod handlers;
pub mod http;
pub mod pump;
pub mod server;
pub mod signal;
pub mod snapshot;

pub use batch::{BatchConfig, BatchQueue, DensityReply};
pub use handlers::{
    ClassifyRequest, ClassifyResponse, ClusterRequest, ClusterResponse, DensityRequest,
    DensityResponse, HealthzResponse, ScoreEntry,
};
pub use http::{Request, Response};
pub use pump::{FinalReport, IngestPump, PumpConfig, PumpControl};
pub use server::{ServeConfig, ServeSeed, Server};
pub use snapshot::{fingerprint_aggregate, ModelSnapshot, SnapshotStore};
