//! Background ingest: feeds the stream through the sharded policy
//! engine and periodically publishes refreshed model snapshots.
//!
//! The pump owns a [`ShardSupervisor`] (PR-8 fault domains over the
//! PR-3 quarantine/repair policy engine) and a record stream. It offers
//! the stream in chunks; after each chunk it merges the shard partials
//! (`serve()`), fits a fresh KDE and publishes the result as the next
//! snapshot generation. On a warm restart the supervisor is built with
//! [`ShardSupervisor::recover`]: the per-shard checkpoints (latest,
//! with `.prev` fallback) become replay cursors, the *recovered* model
//! is published immediately — the server answers queries from it while
//! replay proceeds — and re-offering the stream from `seq` 0 fast-
//! forwards everything already checkpointed, reproducing an
//! uninterrupted run's CFT statistics bit for bit.

use crate::snapshot::{ModelSnapshot, SnapshotStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use udm_classify::DensityClassifier;
use udm_core::{Result, UdmError};
use udm_data::fault::RawRecord;
use udm_kde::{BackendSpec, KdeConfig};
use udm_microcluster::ingest::{IngestCounters, IngestPolicy};
use udm_microcluster::shard::{KillPlan, ShardPlan, ShardRunReport, ShardSupervisor};
use udm_microcluster::{MaintainerConfig, MicroClusterKde, MicroClusterModel};

/// Cooperative stop flags shared between the server and the pump loop.
#[derive(Debug, Default)]
pub struct PumpControl {
    /// Finish the stream position reached, flush final checkpoints and
    /// return a [`FinalReport`].
    pub graceful: AtomicBool,
    /// Abandon in-memory state immediately (simulated crash: on-disk
    /// checkpoints are left exactly as the last cadence wrote them).
    pub hard: AtomicBool,
}

/// What a graceful shutdown hands back to the caller.
#[derive(Debug)]
pub struct FinalReport {
    /// The merged model at shutdown.
    pub model: MicroClusterModel,
    /// Shard coverage the model was merged at.
    pub coverage: f64,
    /// Merged ingest counters.
    pub counters: IngestCounters,
    /// Per-shard checkpointed resume positions (after the final flush,
    /// these cover every record the pump was offered).
    pub next_seqs: Vec<u64>,
    /// Records offered to the supervisor over the pump's lifetime.
    pub offered: u64,
    /// Run report (restarts, states, lag) at shutdown.
    pub report: ShardRunReport,
}

/// Knobs for the pump.
#[derive(Debug, Clone)]
pub struct PumpConfig {
    /// Records offered between snapshot publishes.
    pub refresh_every: usize,
    /// Fault plan forwarded to the supervisor (degradation drills; the
    /// chunked pump supports `none` and `permanently_down` plans).
    pub kill_plan: KillPlan,
    /// Stop offering records after this many (test hook: holds the pump
    /// mid-stream deterministically so a kill lands between records).
    pub ingest_limit: Option<usize>,
    /// Sleep between chunks (throttles ingest so chaos drills can catch
    /// the pump mid-stream; zero for full speed).
    pub chunk_delay: Duration,
    /// The density backend every published snapshot serves through by
    /// default (and the classifier's default, when one is attached).
    pub backend: BackendSpec,
}

impl Default for PumpConfig {
    fn default() -> Self {
        PumpConfig {
            refresh_every: 64,
            kill_plan: KillPlan::none(),
            ingest_limit: None,
            chunk_delay: Duration::ZERO,
            backend: BackendSpec::Exact,
        }
    }
}

/// The background ingest pump.
pub struct IngestPump {
    supervisor: ShardSupervisor,
    records: Vec<RawRecord>,
    position: usize,
    generation: u64,
    classifier: Option<Arc<DensityClassifier>>,
    kde_config: KdeConfig,
    config: PumpConfig,
    /// Whether the supervisor was recovered from checkpoints.
    pub warm: bool,
}

impl IngestPump {
    /// Builds the pump, recovering from checkpoints under `plan.dir`
    /// when any exist (warm restart) and cold-starting otherwise.
    ///
    /// # Errors
    ///
    /// Plan/config validation and checkpoint recovery errors.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        dim: usize,
        maintainer: MaintainerConfig,
        policy: IngestPolicy,
        plan: ShardPlan,
        records: Vec<RawRecord>,
        classifier: Option<Arc<DensityClassifier>>,
        kde_config: KdeConfig,
        config: PumpConfig,
    ) -> Result<Self> {
        config.backend.validate()?;
        if let Some(c) = &classifier {
            // The classifier's default backend follows the pump's, so
            // `/classify` without an override and the CLI agree.
            c.set_backend(config.backend)?;
        }
        let warm = plan.has_checkpoints();
        let supervisor = if warm {
            ShardSupervisor::recover(dim, maintainer, policy, plan)?
        } else {
            ShardSupervisor::new(dim, maintainer, policy, plan)?
        };
        Ok(IngestPump {
            supervisor,
            records,
            position: 0,
            generation: 0,
            classifier,
            kde_config,
            config,
            warm,
        })
    }

    /// Merges the current shard partials into the next snapshot and
    /// publishes it.
    ///
    /// # Errors
    ///
    /// Merge failures from degraded checkpoint loads.
    pub fn publish(&mut self, store: &SnapshotStore) -> Result<u64> {
        let (model, coverage) = self.supervisor.serve()?;
        let kde = match MicroClusterKde::fit(model.clusters(), self.kde_config) {
            Ok(kde) => Some(kde),
            // An empty model (nothing admitted yet) is the expected
            // cold-start state: publish without a KDE; density/classify
            // answer 503 until data arrives.
            Err(UdmError::EmptyDataset) => None,
            Err(err) => {
                // Any other failure is a real problem — surface it
                // instead of silently serving a density-less snapshot.
                udm_observe::counter_inc!("udm_serve_kde_fit_failures_total");
                eprintln!(
                    "udm-serve: KDE fit failed at generation {}: {err} (publishing without density)",
                    self.generation + 1
                );
                None
            }
        };
        let counters = self.supervisor.report().merged_counters();
        self.generation += 1;
        let snapshot = ModelSnapshot::new(
            self.generation,
            model,
            kde,
            self.classifier.clone(),
            coverage,
            counters,
            self.supervisor.report().offered,
        )
        .with_backend_spec(self.config.backend);
        udm_observe::gauge_set!("udm_serve_coverage", coverage);
        Ok(store.publish(snapshot))
    }

    /// Offers the next chunk. Returns `false` when the stream (or the
    /// configured ingest limit) is exhausted.
    ///
    /// # Errors
    ///
    /// Supervisor restart/checkpoint failures.
    pub fn step(&mut self) -> Result<bool> {
        let limit = self
            .config
            .ingest_limit
            .unwrap_or(self.records.len())
            .min(self.records.len());
        if self.position >= limit {
            return Ok(false);
        }
        let end = (self.position + self.config.refresh_every).min(limit);
        self.supervisor
            .run(&self.records[self.position..end], &self.config.kill_plan)?;
        self.position = end;
        Ok(true)
    }

    /// The pump thread body: publish the initial (empty or recovered)
    /// snapshot, then alternate chunk ingest with snapshot publishes
    /// until told to stop. Graceful stop flushes final checkpoints and
    /// returns a report; hard stop abandons state like a crash.
    ///
    /// # Errors
    ///
    /// Ingest or merge failures (the server surfaces them on shutdown).
    pub fn run(
        mut self,
        store: &SnapshotStore,
        control: &PumpControl,
    ) -> Result<Option<FinalReport>> {
        self.publish(store)?;
        loop {
            if control.hard.load(Ordering::SeqCst) {
                return Ok(None);
            }
            if control.graceful.load(Ordering::SeqCst) {
                break;
            }
            if self.step()? {
                self.publish(store)?;
                if !self.config.chunk_delay.is_zero() {
                    std::thread::sleep(self.config.chunk_delay);
                }
            } else {
                // Stream exhausted (or held at the ingest limit): stay
                // alive serving the latest snapshot.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // The cursors the final checkpoints will persist: `finish` writes
        // each shard's state at exactly these positions.
        let next_seqs = self.supervisor.next_seqs();
        let offered = self.supervisor.report().offered;
        let (model, coverage, report) = self.supervisor.finish()?;
        let counters = report.merged_counters();
        Ok(Some(FinalReport {
            model,
            coverage,
            counters,
            next_seqs,
            offered,
            report,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::UncertainPoint;

    fn records(n: u64, dim: usize) -> Vec<RawRecord> {
        (0..n)
            .map(|i| {
                let v: Vec<f64> = (0..dim).map(|j| (i as f64) * 0.1 + j as f64).collect();
                let e = vec![0.1; dim];
                let p = UncertainPoint::new(v, e).unwrap().with_timestamp(i);
                RawRecord::from_point(i, &p)
            })
            .collect()
    }

    fn plan(name: &str, shards: usize) -> ShardPlan {
        let dir = std::env::temp_dir()
            .join("udm_serve_pump_test")
            .join(format!("{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ShardPlan {
            checkpoint_every: 8,
            backoff_base_ms: 0,
            ..ShardPlan::new(shards, dir)
        }
    }

    fn pump(plan: ShardPlan, records: Vec<RawRecord>, config: PumpConfig) -> IngestPump {
        IngestPump::new(
            2,
            MaintainerConfig::new(6),
            IngestPolicy::default(),
            plan,
            records,
            None,
            KdeConfig::error_adjusted(),
            config,
        )
        .unwrap()
    }

    #[test]
    fn pump_publishes_refreshed_generations_and_finishes_clean() {
        let store = SnapshotStore::new();
        let p = plan("refresh", 2);
        let mut pump = pump(
            p,
            records(100, 2),
            PumpConfig {
                refresh_every: 25,
                ..PumpConfig::default()
            },
        );
        assert!(!pump.warm);
        pump.publish(&store).unwrap();
        let g1 = store.load().unwrap();
        assert_eq!(g1.generation, 1);
        assert!(g1.kde.is_none(), "no data ingested yet");
        while pump.step().unwrap() {
            pump.publish(&store).unwrap();
        }
        let last = store.load().unwrap();
        assert!(last.generation >= 5);
        assert_eq!(last.model.total_points(), 100);
        assert!(last.kde.is_some());
        assert!(last.verify());
    }

    #[test]
    fn pump_stamps_snapshots_with_its_backend_spec() {
        let store = SnapshotStore::new();
        let p = plan("backend", 2);
        let mut pump = pump(
            p,
            records(60, 2),
            PumpConfig {
                refresh_every: 30,
                backend: BackendSpec::Coreset { eps: 0.25 },
                ..PumpConfig::default()
            },
        );
        while pump.step().unwrap() {
            pump.publish(&store).unwrap();
        }
        let snap = store.load().unwrap();
        assert_eq!(snap.backend_spec, BackendSpec::Coreset { eps: 0.25 });
        assert_eq!(snap.backend().unwrap().unwrap().name(), "coreset");
    }

    #[test]
    fn graceful_run_reports_fully_checkpointed_stream() {
        let store = SnapshotStore::new();
        let control = PumpControl::default();
        let recs = records(90, 2);
        let p = plan("graceful", 3);
        let pump = pump(
            p,
            recs,
            PumpConfig {
                refresh_every: 30,
                ..PumpConfig::default()
            },
        );
        // Ask for graceful stop after the stream drains: run in this
        // thread with the flag pre-armed after a helper thread sets it.
        control.graceful.store(true, Ordering::SeqCst);
        let report = pump.run(&store, &control).unwrap().unwrap();
        // Graceful before any step: zero records, but checkpoints exist.
        assert_eq!(report.offered, 0);
        assert_eq!(report.next_seqs, vec![0, 0, 0]);
    }

    #[test]
    fn warm_restart_reproduces_uninterrupted_cft() {
        let recs = records(120, 2);

        // Uninterrupted reference.
        let store = SnapshotStore::new();
        let mut clean = pump(plan("warm_ref", 2), recs.clone(), PumpConfig::default());
        while clean.step().unwrap() {}
        clean.publish(&store).unwrap();
        let want = store.load().unwrap().model_fingerprint();

        // Crash mid-stream: ingest 70 of 120, hard-stop (state abandoned,
        // checkpoints survive at the last cadence boundary).
        let p = plan("warm_crash", 2);
        let mut first = pump(
            p.clone(),
            recs.clone(),
            PumpConfig {
                refresh_every: 35,
                ingest_limit: Some(70),
                ..PumpConfig::default()
            },
        );
        while first.step().unwrap() {}
        drop(first);

        // Warm restart over the same state dir, full stream re-offered.
        let store2 = SnapshotStore::new();
        let mut resumed = pump(p, recs, PumpConfig::default());
        assert!(resumed.warm);
        // The recovered model serves immediately, before any replay.
        resumed.publish(&store2).unwrap();
        let recovered = store2.load().unwrap();
        assert!(recovered.model.total_points() > 0, "recovered model empty");
        while resumed.step().unwrap() {}
        resumed.publish(&store2).unwrap();
        let got = store2.load().unwrap();
        assert_eq!(got.model.total_points(), 120);
        assert_eq!(got.model_fingerprint(), want, "CFT stats drifted");
    }
}
