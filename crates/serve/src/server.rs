//! The daemon: TCP accept loop, routing, drain-aware shutdown.
//!
//! One thread accepts connections (non-blocking poll so shutdown flags
//! are honored promptly), one thread per connection parses and answers
//! requests, one background thread pumps ingest and publishes
//! snapshots, and — when batching is enabled — one worker drains the
//! density batch queue. Graceful shutdown stops accepting, waits for
//! in-flight requests, drains the batch queue, then asks the pump to
//! flush final checkpoints and hand back its [`FinalReport`].

use crate::batch::{BatchConfig, BatchQueue};
use crate::handlers;
use crate::http::{read_request, write_response, Request, Response};
use crate::pump::{FinalReport, IngestPump, PumpConfig, PumpControl};
use crate::snapshot::SnapshotStore;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use udm_classify::DensityClassifier;
use udm_core::{Result, UdmError};
use udm_data::fault::RawRecord;
use udm_kde::{BackendSpec, KdeConfig};
use udm_microcluster::ingest::IngestPolicy;
use udm_microcluster::shard::{KillPlan, ShardPlan};
use udm_microcluster::MaintainerConfig;

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Fault domains for background ingest.
    pub shards: usize,
    /// Per-shard checkpoint cadence.
    pub checkpoint_every: u64,
    /// Dead-shard staleness budget (records).
    pub staleness_budget: u64,
    /// Records between snapshot publishes.
    pub refresh_every: usize,
    /// Density request batching (`None` = inline evaluation).
    pub batch: Option<BatchConfig>,
    /// Checkpoint/state directory (shared across restarts).
    pub state_dir: PathBuf,
    /// `/healthz` degrades below this shard coverage.
    pub min_coverage: f64,
    /// Micro-cluster budget `q`.
    pub max_clusters: usize,
    /// Ingest quarantine/repair policy.
    pub policy: IngestPolicy,
    /// KDE configuration for published snapshots.
    pub kde: KdeConfig,
    /// Density backend published with every snapshot (`Exact` keeps
    /// batching bit-identical; approximate backends trade accuracy for
    /// latency on large models).
    pub backend: BackendSpec,
    /// Fault plan for degradation drills.
    pub kill_plan: KillPlan,
    /// Hold ingest after this many records (chaos-test hook).
    pub ingest_limit: Option<usize>,
    /// Throttle between ingest chunks.
    pub chunk_delay: Duration,
}

impl ServeConfig {
    /// Paper-default serving configuration over a state directory.
    pub fn new(state_dir: PathBuf) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 2,
            checkpoint_every: 64,
            staleness_budget: 64,
            refresh_every: 64,
            batch: Some(BatchConfig::default()),
            state_dir,
            min_coverage: 1.0,
            max_clusters: 60,
            policy: IngestPolicy::default(),
            kde: KdeConfig::error_adjusted(),
            backend: BackendSpec::Exact,
            kill_plan: KillPlan::none(),
            ingest_limit: None,
            chunk_delay: Duration::ZERO,
        }
    }
}

/// The training/stream seed the daemon serves.
#[derive(Debug)]
pub struct ServeSeed {
    /// Dimensionality of the stream.
    pub dim: usize,
    /// The record stream fed to background ingest.
    pub records: Vec<RawRecord>,
    /// Pre-fitted classifier (`None` for unlabelled data).
    pub classifier: Option<Arc<DensityClassifier>>,
}

#[derive(Debug, Default)]
struct ServerControl {
    stop_accepting: AtomicBool,
    hard_stop: AtomicBool,
    in_flight: AtomicUsize,
    shutdown_via_http: AtomicBool,
}

/// A running daemon.
pub struct Server {
    addr: SocketAddr,
    store: Arc<SnapshotStore>,
    queue: Option<Arc<BatchQueue>>,
    control: Arc<ServerControl>,
    pump_control: Arc<PumpControl>,
    min_coverage: f64,
    accept_handle: Option<JoinHandle<()>>,
    pump_handle: Option<JoinHandle<Result<Option<FinalReport>>>>,
    batch_handle: Option<JoinHandle<()>>,
    /// Whether this start recovered from existing checkpoints.
    pub warm: bool,
}

impl Server {
    /// Binds, spawns the pump/batch/accept threads and returns.
    ///
    /// # Errors
    ///
    /// Bind failures ([`UdmError::Io`]), plan validation, checkpoint
    /// recovery errors.
    pub fn start(config: &ServeConfig, seed: ServeSeed) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| UdmError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| UdmError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| UdmError::Io(e.to_string()))?;

        let plan = ShardPlan {
            checkpoint_every: config.checkpoint_every,
            staleness_budget: config.staleness_budget,
            ..ShardPlan::new(config.shards, config.state_dir.clone())
        };
        let pump = IngestPump::new(
            seed.dim,
            MaintainerConfig::new(config.max_clusters),
            config.policy.clone(),
            plan,
            seed.records,
            seed.classifier,
            config.kde,
            PumpConfig {
                refresh_every: config.refresh_every,
                kill_plan: config.kill_plan.clone(),
                ingest_limit: config.ingest_limit,
                chunk_delay: config.chunk_delay,
                backend: config.backend,
            },
        )?;
        let warm = pump.warm;

        let store = Arc::new(SnapshotStore::new());
        let control = Arc::new(ServerControl::default());
        let pump_control = Arc::new(PumpControl::default());

        let pump_handle = {
            let store = Arc::clone(&store);
            let pump_control = Arc::clone(&pump_control);
            std::thread::spawn(move || pump.run(&store, &pump_control))
        };

        let queue = config
            .batch
            .as_ref()
            .map(|b| Arc::new(BatchQueue::new(b.clone())));
        let batch_handle = queue.as_ref().map(|q| {
            let q = Arc::clone(q);
            let store = Arc::clone(&store);
            std::thread::spawn(move || q.run_worker(&store))
        });

        let accept_handle = {
            let store = Arc::clone(&store);
            let queue = queue.clone();
            let control = Arc::clone(&control);
            let min_coverage = config.min_coverage;
            std::thread::spawn(move || {
                accept_loop(&listener, &store, &queue, &control, min_coverage);
            })
        };

        Ok(Server {
            addr,
            store,
            queue,
            control,
            pump_control,
            min_coverage: config.min_coverage,
            accept_handle: Some(accept_handle),
            pump_handle: Some(pump_handle),
            batch_handle,
            warm,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The snapshot store (read access for embedding tests/benches).
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// Serving coverage floor in force.
    pub fn min_coverage(&self) -> f64 {
        self.min_coverage
    }

    /// True once a client has POSTed `/shutdown`.
    pub fn shutdown_via_http(&self) -> bool {
        self.control.shutdown_via_http.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests and
    /// the batch queue, flush final checkpoints, return the pump's
    /// report (`None` only if the pump was hard-stopped first).
    ///
    /// # Errors
    ///
    /// Pump finish failures; [`UdmError::Io`] if a worker panicked.
    pub fn shutdown_graceful(mut self) -> Result<Option<FinalReport>> {
        self.control.stop_accepting.store(true, Ordering::SeqCst);
        // Drain: wait for in-flight requests (bounded grace period).
        let drain_started = Instant::now();
        while self.control.in_flight.load(Ordering::SeqCst) > 0
            && drain_started.elapsed() < Duration::from_secs(10)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(queue) = &self.queue {
            queue.shutdown();
        }
        if let Some(h) = self.batch_handle.take() {
            h.join().map_err(|_| worker_panicked())?;
        }
        self.pump_control.graceful.store(true, Ordering::SeqCst);
        let report = match self.pump_handle.take() {
            Some(h) => h.join().map_err(|_| worker_panicked())??,
            None => None,
        };
        if let Some(h) = self.accept_handle.take() {
            h.join().map_err(|_| worker_panicked())?;
        }
        Ok(report)
    }

    /// Hard stop: abandon ingest state mid-stream (in-process stand-in
    /// for `kill -9` — checkpoints stay at their last cadence write).
    ///
    /// # Errors
    ///
    /// [`UdmError::Io`] if a worker panicked.
    pub fn stop_hard(mut self) -> Result<()> {
        self.control.hard_stop.store(true, Ordering::SeqCst);
        self.control.stop_accepting.store(true, Ordering::SeqCst);
        self.pump_control.hard.store(true, Ordering::SeqCst);
        if let Some(queue) = &self.queue {
            queue.shutdown();
        }
        if let Some(h) = self.batch_handle.take() {
            h.join().map_err(|_| worker_panicked())?;
        }
        if let Some(h) = self.pump_handle.take() {
            h.join().map_err(|_| worker_panicked())??;
        }
        if let Some(h) = self.accept_handle.take() {
            h.join().map_err(|_| worker_panicked())?;
        }
        Ok(())
    }
}

fn worker_panicked() -> UdmError {
    UdmError::Io("server worker thread panicked".into())
}

fn accept_loop(
    listener: &TcpListener,
    store: &Arc<SnapshotStore>,
    queue: &Option<Arc<BatchQueue>>,
    control: &Arc<ServerControl>,
    min_coverage: f64,
) {
    loop {
        if control.stop_accepting.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let store = Arc::clone(store);
                let queue = queue.clone();
                let control = Arc::clone(control);
                std::thread::spawn(move || {
                    serve_connection(stream, &store, queue.as_deref(), &control, min_coverage);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    store: &SnapshotStore,
    queue: Option<&BatchQueue>,
    control: &ServerControl,
    min_coverage: f64,
) {
    // Nagle + delayed ACK would add ~40ms to every small round-trip;
    // a serving daemon always wants immediate writes.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    loop {
        if control.hard_stop.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_request(&mut stream) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) => {
                let body = error_body(&e);
                let _ = write_response(&mut stream, &body, false);
                return;
            }
        };
        control.in_flight.fetch_add(1, Ordering::SeqCst);
        let started = Instant::now();
        let response = route(store, queue, control, min_coverage, &request);
        udm_observe::counter_inc!("udm_serve_requests_total");
        udm_observe::histogram_observe!(
            "udm_serve_request_seconds",
            started.elapsed().as_secs_f64()
        );
        let keep_alive = request.keep_alive && !control.stop_accepting.load(Ordering::SeqCst);
        let write = write_response(&mut stream, &response, keep_alive);
        control.in_flight.fetch_sub(1, Ordering::SeqCst);
        if write.is_err() || !keep_alive {
            return;
        }
    }
}

#[derive(serde::Serialize)]
struct ErrorBody {
    error: String,
    status: u16,
}

fn error_body(err: &UdmError) -> Response {
    let status = handlers::status_for(err);
    let body = ErrorBody {
        error: err.to_string(),
        status,
    };
    json_or_500(status, &body)
}

fn json_or_500<T: serde::Serialize>(status: u16, value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(status, body),
        Err(e) => Response::json(500, format!("{{\"error\":\"encode: {e}\"}}")),
    }
}

fn parse_body<T: serde::Deserialize>(request: &Request) -> Result<T> {
    let text = std::str::from_utf8(&request.body).map_err(|_| UdmError::Parse {
        line: 1,
        message: "request body is not UTF-8".into(),
    })?;
    serde_json::from_str(text).map_err(|e| UdmError::Parse {
        line: 1,
        message: format!("bad JSON body: {e}"),
    })
}

fn route(
    store: &SnapshotStore,
    queue: Option<&BatchQueue>,
    control: &ServerControl,
    min_coverage: f64,
    request: &Request,
) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            udm_observe::counter_inc!("udm_serve_healthz_requests_total");
            let (status, body) = handlers::handle_healthz(store, min_coverage);
            json_or_500(status, &body)
        }
        ("GET", "/metrics") => {
            udm_observe::counter_inc!("udm_serve_metrics_requests_total");
            let snapshot = udm_observe::Snapshot::capture();
            Response::text(200, udm_observe::to_prometheus(&snapshot))
        }
        ("POST", "/density") => {
            udm_observe::counter_inc!("udm_serve_density_requests_total");
            match parse_body(request).and_then(|req| handlers::handle_density(store, queue, &req)) {
                Ok(body) => json_or_500(200, &body),
                Err(e) => error_body(&e),
            }
        }
        ("POST", "/classify") => {
            udm_observe::counter_inc!("udm_serve_classify_requests_total");
            match parse_body(request).and_then(|req| handlers::handle_classify(store, &req)) {
                Ok(body) => json_or_500(200, &body),
                Err(e) => error_body(&e),
            }
        }
        ("POST", "/cluster") => {
            udm_observe::counter_inc!("udm_serve_cluster_requests_total");
            match parse_body(request).and_then(|req| handlers::handle_cluster(store, &req)) {
                Ok(body) => json_or_500(200, &body),
                Err(e) => error_body(&e),
            }
        }
        ("POST", "/shutdown") => {
            control.shutdown_via_http.store(true, Ordering::SeqCst);
            Response::json(200, "{\"status\":\"shutting down\"}".into())
        }
        ("GET", "/") => Response::text(
            200,
            "udm serve: POST /density /classify /cluster, GET /healthz /metrics\n".into(),
        ),
        (
            _,
            "/healthz" | "/metrics" | "/density" | "/classify" | "/cluster" | "/shutdown" | "/",
        ) => Response::json(405, "{\"error\":\"method not allowed\"}".into()),
        _ => Response::json(404, "{\"error\":\"no such endpoint\"}".into()),
    }
}
