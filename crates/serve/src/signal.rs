//! Async-signal-safe SIGTERM/SIGINT latching, without a libc crate.
//!
//! The offline-vendoring rule leaves no signal-handling dependency, so
//! the daemon declares the two libc symbols it needs itself. The
//! handler does the only thing that is async-signal-safe: store into a
//! static atomic. The serving loop polls [`shutdown_requested`] and
//! runs the actual drain/flush sequence on a normal thread.

use std::sync::atomic::{AtomicBool, Ordering};

/// POSIX `SIGINT` (ctrl-c).
pub const SIGINT: i32 = 2;
/// POSIX `SIGTERM`.
pub const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    /// `signal(2)` from the platform libc (already linked by std). The
    /// previous-handler return value is pointer-sized; it is declared
    /// opaque and discarded.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn latch(_signum: i32) {
    // Only an atomic store: the one operation guaranteed safe inside a
    // signal handler context.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the latching handler for SIGTERM and SIGINT. No-op on
/// non-unix targets (the daemon then only stops via `/shutdown`).
pub fn install() {
    #[cfg(unix)]
    {
        // SAFETY: `signal` is the libc function with the declared
        // signature; `latch` is an `extern "C" fn(i32)` that performs
        // only an async-signal-safe atomic store, and replacing the
        // disposition of SIGTERM/SIGINT is process-wide but benign —
        // the previous handlers were the defaults.
        unsafe {
            signal(SIGTERM, latch);
            signal(SIGINT, latch);
        }
    }
}

/// True once any latched signal has fired.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Clears the latch (tests re-use the process).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(unix)]
    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    #[cfg(unix)]
    fn latched_signal_sets_the_flag() {
        reset();
        install();
        assert!(!shutdown_requested());
        // SAFETY: raising SIGTERM in-process after `install` routed it
        // to the latching handler; the handler only stores an atomic.
        unsafe {
            raise(SIGTERM);
        }
        // The handler runs synchronously on this thread for raise(2).
        assert!(shutdown_requested());
        reset();
    }
}
