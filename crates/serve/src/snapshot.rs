//! Immutable fitted-model snapshots and their atomic publication.
//!
//! A [`ModelSnapshot`] bundles everything one generation of the model
//! needs to answer queries: the merged micro-cluster model, a KDE
//! fitted over it, the (optional) classifier, and the ingest health
//! counters the snapshot was published under. Snapshots are immutable
//! once built; the [`SnapshotStore`] swaps an `Arc` to the newest one,
//! so readers clone the `Arc` under a momentary read lock and then
//! evaluate lock-free against a model that can never change — or tear —
//! under them. Each snapshot carries an FNV-1a checksum over its own
//! identity fields, giving the concurrency stress tests an independent
//! torn-read detector.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use udm_classify::DensityClassifier;
use udm_core::Result;
use udm_kde::{BackendSpec, DensityBackend};
use udm_microcluster::shard::{AggregateCft, MicroClusterModel};
use udm_microcluster::{build_backend, MicroClusterKde};

/// Re-exported ingest counters type carried by each snapshot.
pub use udm_microcluster::ingest::IngestCounters;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_f64s(seed: u64, values: &[f64]) -> u64 {
    let mut h = seed;
    for &v in values {
        h = fnv1a(h, &v.to_bits().to_le_bytes());
    }
    h
}

/// Order- and representation-stable digest of an aggregate CFT: folds
/// the raw bit patterns of `CF1/CF2/EF2`, the member count and the
/// newest timestamp. Two models digest equal iff their aggregate
/// statistics are bit-identical — the property the kill-and-warm-restart
/// drill asserts over HTTP.
pub fn fingerprint_aggregate(agg: &AggregateCft) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a_f64s(h, &agg.cf1);
    h = fnv1a_f64s(h, &agg.cf2);
    h = fnv1a_f64s(h, &agg.ef2);
    h = fnv1a(h, &agg.n.to_le_bytes());
    fnv1a(h, &agg.last_timestamp.to_le_bytes())
}

/// One immutable generation of the serving model.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// Monotone publication counter (1 = first publish).
    pub generation: u64,
    /// Merged micro-cluster model this generation serves from.
    pub model: MicroClusterModel,
    /// KDE fitted over the model's clusters (`None` until any point has
    /// been ingested — density queries answer 503 meanwhile).
    pub kde: Option<MicroClusterKde>,
    /// Classifier, when the seed dataset was labelled.
    pub classifier: Option<Arc<DensityClassifier>>,
    /// Shard coverage `contributing/S` the model was merged at.
    pub coverage: f64,
    /// Merged ingest counters at publication time.
    pub counters: IngestCounters,
    /// Records offered to the ingest pump when this was published.
    pub ingested: u64,
    /// When the snapshot was published (staleness accounting).
    pub published: Instant,
    /// The density backend this generation serves through by default
    /// (per-request overrides still resolve against the same snapshot).
    pub backend_spec: BackendSpec,
    /// Lazily-built, per-spec backend cache: coreset/HBE constructions
    /// run once per (snapshot, spec), then every query shares the `Arc`.
    backends: Mutex<HashMap<String, Arc<dyn DensityBackend>>>,
    checksum: u64,
}

impl ModelSnapshot {
    /// Builds a snapshot, sealing it with its integrity checksum.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        generation: u64,
        model: MicroClusterModel,
        kde: Option<MicroClusterKde>,
        classifier: Option<Arc<DensityClassifier>>,
        coverage: f64,
        counters: IngestCounters,
        ingested: u64,
    ) -> Self {
        let mut snap = ModelSnapshot {
            generation,
            model,
            kde,
            classifier,
            coverage,
            counters,
            ingested,
            published: Instant::now(),
            backend_spec: BackendSpec::Exact,
            backends: Mutex::new(HashMap::new()),
            checksum: 0,
        };
        snap.checksum = snap.compute_checksum();
        snap
    }

    /// Selects the default density backend this snapshot serves through
    /// (builder-style; the checksum covers identity fields only, so the
    /// spec can be applied after construction).
    #[must_use]
    pub fn with_backend_spec(mut self, spec: BackendSpec) -> Self {
        self.backend_spec = spec;
        self
    }

    /// The default density backend over this snapshot's KDE, or `None`
    /// while no KDE has been fitted (data endpoints answer 503 then).
    ///
    /// # Errors
    ///
    /// Backend construction failures (invalid spec knobs).
    pub fn backend(&self) -> Result<Option<Arc<dyn DensityBackend>>> {
        let spec = self.backend_spec;
        self.backend_for(&spec)
    }

    /// The density backend for an explicit spec — the per-request
    /// override path. Built on first use, then shared via the per-spec
    /// cache (snapshots are immutable, so a built backend never goes
    /// stale within its generation).
    ///
    /// # Errors
    ///
    /// Backend construction failures (invalid spec knobs).
    pub fn backend_for(&self, spec: &BackendSpec) -> Result<Option<Arc<dyn DensityBackend>>> {
        let Some(kde) = &self.kde else {
            return Ok(None);
        };
        let key = spec.to_string();
        if let Ok(cache) = self.backends.lock() {
            if let Some(be) = cache.get(&key) {
                return Ok(Some(Arc::clone(be)));
            }
        }
        let built = build_backend(kde, spec)?;
        if let Ok(mut cache) = self.backends.lock() {
            cache.insert(key, Arc::clone(&built));
        }
        Ok(Some(built))
    }

    fn compute_checksum(&self) -> u64 {
        let mut h = fingerprint_aggregate(&self.model.aggregate());
        h = fnv1a(h, &self.generation.to_le_bytes());
        h = fnv1a(h, &self.coverage.to_bits().to_le_bytes());
        h = fnv1a(h, &self.counters.arrivals.to_le_bytes());
        fnv1a(h, &self.ingested.to_le_bytes())
    }

    /// Digest of the aggregate CFT alone (exposed on `/healthz` so the
    /// chaos drill can compare restarted vs. uninterrupted models).
    pub fn model_fingerprint(&self) -> u64 {
        fingerprint_aggregate(&self.model.aggregate())
    }

    /// Re-derives the checksum and compares it with the sealed value.
    /// A mismatch means a reader observed a half-published snapshot —
    /// which the `Arc` swap makes impossible; the stress test asserts
    /// exactly that.
    pub fn verify(&self) -> bool {
        self.compute_checksum() == self.checksum
    }

    /// Seconds since publication.
    pub fn age_seconds(&self) -> f64 {
        self.published.elapsed().as_secs_f64()
    }
}

/// The atomically-swapped publication slot.
///
/// Readers hold the read lock only long enough to clone the `Arc`;
/// evaluation happens entirely outside the lock, so a slow query never
/// delays publication and publication never blocks readers mid-query.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    slot: RwLock<Option<Arc<ModelSnapshot>>>,
}

impl SnapshotStore {
    /// An empty store (no snapshot published yet — the daemon reports
    /// 503 on data endpoints until the pump publishes generation 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current snapshot, if any. Lock-poisoning cannot corrupt an
    /// `Option<Arc>` (writes are a single pointer store), so a poisoned
    /// lock degrades to reading the last published value.
    pub fn load(&self) -> Option<Arc<ModelSnapshot>> {
        self.slot
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Publishes a snapshot, returning its generation.
    pub fn publish(&self, snapshot: ModelSnapshot) -> u64 {
        let generation = snapshot.generation;
        let mut slot = self
            .slot
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = Some(Arc::new(snapshot));
        drop(slot);
        udm_observe::gauge_set!("udm_serve_snapshot_generation", generation as f64);
        generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use udm_core::UncertainPoint;
    use udm_microcluster::{MaintainerConfig, MicroClusterMaintainer};

    fn model_of(points: usize, offset: f64) -> MicroClusterModel {
        let mut m = MicroClusterMaintainer::new(2, MaintainerConfig::new(4)).unwrap();
        for i in 0..points {
            let p = UncertainPoint::new(vec![offset + i as f64, 1.0], vec![0.1, 0.1])
                .unwrap()
                .with_timestamp(i as u64);
            m.insert(&p).unwrap();
        }
        MicroClusterModel::from_clusters(2, m.into_clusters()).unwrap()
    }

    fn snapshot_of(generation: u64, points: usize, offset: f64) -> ModelSnapshot {
        let model = model_of(points, offset);
        let kde = MicroClusterKde::fit(model.clusters(), udm_kde::KdeConfig::error_adjusted()).ok();
        ModelSnapshot::new(
            generation,
            model,
            kde,
            None,
            1.0,
            IngestCounters::default(),
            points as u64,
        )
    }

    #[test]
    fn snapshot_serves_backends_per_spec() {
        let snap = snapshot_of(1, 12, 0.0).with_backend_spec(BackendSpec::Coreset { eps: 0.2 });
        assert!(snap.verify(), "backend spec must not disturb the checksum");
        let default = snap.backend().unwrap().unwrap();
        assert_eq!(default.name(), "coreset");
        // The cache hands back the same instance for the same spec…
        let again = snap.backend().unwrap().unwrap();
        assert!(Arc::ptr_eq(&default, &again));
        // …and an override resolves independently.
        let exact = snap.backend_for(&BackendSpec::Exact).unwrap().unwrap();
        assert_eq!(exact.name(), "exact");
        let s = udm_core::Subspace::full(2).unwrap();
        let d_exact = exact.density_subspace(&[1.0, 1.0], None, s).unwrap();
        let d_kde = snap
            .kde
            .as_ref()
            .unwrap()
            .density_subspace_with_error(&[1.0, 1.0], None, s)
            .unwrap();
        assert_eq!(d_exact.to_bits(), d_kde.to_bits());
    }

    #[test]
    fn kdeless_snapshot_has_no_backend() {
        let model = model_of(5, 0.0);
        let snap = ModelSnapshot::new(1, model, None, None, 1.0, IngestCounters::default(), 5);
        assert!(snap.backend().unwrap().is_none());
    }

    #[test]
    fn checksum_detects_mutation() {
        let mut snap = snapshot_of(1, 10, 0.0);
        assert!(snap.verify());
        snap.generation += 1;
        assert!(!snap.verify());
    }

    #[test]
    fn fingerprint_tracks_aggregate_bits() {
        let a = snapshot_of(1, 10, 0.0);
        let b = snapshot_of(2, 10, 0.0);
        let c = snapshot_of(1, 10, 5.0);
        // Same stream → same model fingerprint even across generations.
        assert_eq!(a.model_fingerprint(), b.model_fingerprint());
        assert_ne!(a.model_fingerprint(), c.model_fingerprint());
    }

    #[test]
    fn store_publishes_and_loads() {
        let store = SnapshotStore::new();
        assert!(store.load().is_none());
        store.publish(snapshot_of(1, 5, 0.0));
        let got = store.load().unwrap();
        assert_eq!(got.generation, 1);
        assert!(got.verify());
    }

    /// N readers classify-by-loading while a publisher swaps generations:
    /// every observed snapshot verifies, and generations are monotone
    /// per reader (no torn or stale-after-fresh reads).
    #[test]
    fn concurrent_swap_readers_see_only_complete_generations() {
        let store = Arc::new(SnapshotStore::new());
        store.publish(snapshot_of(1, 8, 0.0));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0usize;
                    // Keep going until stopped AND at least one read done
                    // (on a 1-core host the publisher can finish before a
                    // reader is first scheduled).
                    while !stop.load(Ordering::Relaxed) || seen == 0 {
                        let snap = store.load().expect("published before spawn");
                        assert!(snap.verify(), "torn snapshot at gen {}", snap.generation);
                        assert!(snap.generation >= last, "generation went backwards");
                        // Exercise the model through the snapshot too.
                        if let Some(kde) = &snap.kde {
                            let s = udm_core::Subspace::full(2).unwrap();
                            let d = kde
                                .density_subspace_with_error(&[1.0, 1.0], None, s)
                                .unwrap();
                            assert!(d.is_finite());
                        }
                        last = snap.generation;
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();
        for generation in 2..40 {
            store.publish(snapshot_of(generation, 8, generation as f64));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    }
}
