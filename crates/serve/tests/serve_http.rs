//! End-to-end daemon tests over real TCP: endpoint round-trips,
//! degraded `/healthz`, graceful-shutdown checkpoint coverage, and the
//! in-process kill/warm-restart drill.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use udm_classify::{ClassifierConfig, DensityClassifier};
use udm_data::fault::RawRecord;
use udm_data::{GaussianClassSpec, MixtureGenerator};
use udm_microcluster::KillPlan;
use udm_serve::{HealthzResponse, ServeConfig, ServeSeed, Server};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("udm_serve_http_test")
        .join(format!("{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn labelled_seed(n: usize, seed: u64) -> (ServeSeed, usize) {
    let g = MixtureGenerator::new(
        2,
        vec![
            GaussianClassSpec {
                mean: vec![0.0, 0.0],
                std: vec![1.0, 1.0],
                weight: 1.0,
            },
            GaussianClassSpec {
                mean: vec![5.0, 5.0],
                std: vec![1.0, 1.0],
                weight: 1.0,
            },
        ],
    )
    .unwrap();
    let data = g.generate(n, seed);
    let classifier = DensityClassifier::fit(&data, ClassifierConfig::error_adjusted(20)).unwrap();
    let records: Vec<RawRecord> = data
        .points()
        .iter()
        .enumerate()
        .map(|(i, p)| RawRecord::from_point(i as u64, &p.clone().with_timestamp(i as u64)))
        .collect();
    (
        ServeSeed {
            dim: 2,
            records,
            classifier: Some(Arc::new(classifier)),
        },
        n,
    )
}

/// Minimal HTTP client: one request, fresh connection, full response.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn healthz(addr: SocketAddr) -> (u16, HealthzResponse) {
    let (status, body) = request(addr, "GET", "/healthz", "");
    let parsed: HealthzResponse = serde_json::from_str(&body).expect("healthz JSON");
    (status, parsed)
}

/// Polls `/healthz` until `pred` holds (or panics after `secs`).
fn wait_for(
    addr: SocketAddr,
    secs: u64,
    pred: impl Fn(&HealthzResponse) -> bool,
) -> HealthzResponse {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        let (_, h) = healthz(addr);
        if pred(&h) {
            return h;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting on healthz: {h:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn endpoints_round_trip_over_http() {
    let (seed, n) = labelled_seed(120, 11);
    let config = ServeConfig {
        refresh_every: 40,
        ..ServeConfig::new(test_dir("endpoints"))
    };
    let server = Server::start(&config, seed).unwrap();
    let addr = server.addr();

    let h = wait_for(addr, 30, |h| h.arrivals == n as u64);
    assert_eq!(h.status, "ok");
    assert!(h.classifier);
    assert_eq!(h.model_fingerprint.len(), 16);

    let (status, body) = request(
        addr,
        "POST",
        "/density",
        "{\"values\": [1.0, 0.5], \"errors\": null, \"dims\": null}",
    );
    assert_eq!(status, 200, "density: {body}");
    let density: udm_serve::DensityResponse = serde_json::from_str(&body).unwrap();
    assert!(density.density.is_finite() && density.density > 0.0);
    assert!(density.batch_size >= 1);

    let (status, body) = request(
        addr,
        "POST",
        "/density",
        "{\"values\": [1.0, 0.5], \"dims\": [1]}",
    );
    assert_eq!(status, 200, "subspace density: {body}");

    let (status, body) = request(addr, "POST", "/classify", "{\"values\": [5.0, 4.5]}");
    assert_eq!(status, 200, "classify: {body}");
    let classify: udm_serve::ClassifyResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(classify.scores.len(), 2);

    let (status, body) = request(addr, "POST", "/cluster", "{\"values\": [0.0, 0.0]}");
    assert_eq!(status, 200, "cluster: {body}");

    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("udm_serve_requests_total"),
        "prometheus export missing serve counters"
    );

    // Error surface: bad JSON → 400, unknown path → 404, bad method → 405,
    // non-finite input → 400.
    let (status, _) = request(addr, "POST", "/density", "{\"values\": [1.0,");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/density", "");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "POST", "/density", "{\"values\": [1.0]}");
    assert_eq!(status, 400, "dimension mismatch should be a client error");

    server.shutdown_graceful().unwrap();
}

#[test]
fn healthz_degrades_on_dead_shard() {
    let (seed, n) = labelled_seed(100, 12);
    let config = ServeConfig {
        shards: 2,
        kill_plan: KillPlan::none().permanently_down(1),
        refresh_every: 25,
        // Past-budget dead shard: its data is dropped from the merge.
        staleness_budget: 0,
        ..ServeConfig::new(test_dir("degraded"))
    };
    let server = Server::start(&config, seed).unwrap();
    let addr = server.addr();
    wait_for(addr, 30, |h| h.generation > 1 && h.coverage < 1.0);
    let (status, h) = healthz(addr);
    assert_eq!(status, 503, "degraded coverage must 503: {h:?}");
    assert_eq!(h.status, "degraded");
    assert!((h.coverage - 0.5).abs() < 1e-12, "coverage {}", h.coverage);
    assert!(h.arrivals < n as u64, "dead shard records must be missing");
    server.shutdown_graceful().unwrap();
}

#[test]
fn graceful_shutdown_flushes_checkpoints_covering_the_stream() {
    let (seed, n) = labelled_seed(90, 13);
    let config = ServeConfig {
        shards: 3,
        checkpoint_every: 16,
        refresh_every: 30,
        ..ServeConfig::new(test_dir("graceful"))
    };
    let server = Server::start(&config, seed).unwrap();
    let addr = server.addr();
    wait_for(addr, 30, |h| h.arrivals == n as u64);
    let report = server
        .shutdown_graceful()
        .unwrap()
        .expect("graceful report");
    // No lost ingest records: every arrival is accounted for and the
    // final checkpoints' resume cursors cover the whole stream. With
    // seq % 3 partitioning of 90 records the last seqs per shard are
    // 87, 88, 89 — so the durable cursors must be 88, 89, 90.
    assert_eq!(report.counters.arrivals, n as u64);
    assert_eq!(report.offered, n as u64);
    assert_eq!(report.next_seqs, vec![88, 89, 90]);
    assert_eq!(report.model.total_points(), n as u64);
}

#[test]
fn hard_stop_then_warm_restart_is_bit_identical() {
    let n = 150;

    // Reference: uninterrupted run to completion.
    let (seed_ref, _) = labelled_seed(n, 14);
    let ref_config = ServeConfig {
        refresh_every: 30,
        ..ServeConfig::new(test_dir("warm_ref"))
    };
    let ref_server = Server::start(&ref_config, seed_ref).unwrap();
    let want = wait_for(ref_server.addr(), 30, |h| h.arrivals == n as u64).model_fingerprint;
    ref_server.shutdown_graceful().unwrap();

    // Victim: same stream, held mid-ingest, then hard-stopped (the
    // in-process stand-in for kill -9 — checkpoints stay wherever the
    // cadence last wrote them).
    let dir = test_dir("warm_victim");
    let (seed_victim, _) = labelled_seed(n, 14);
    let victim_config = ServeConfig {
        refresh_every: 30,
        checkpoint_every: 16,
        ingest_limit: Some(90),
        ..ServeConfig::new(dir.clone())
    };
    let victim = Server::start(&victim_config, seed_victim).unwrap();
    assert!(!victim.warm);
    wait_for(victim.addr(), 30, |h| h.arrivals >= 60);
    victim.stop_hard().unwrap();

    // Warm restart over the same state dir with the full stream.
    let (seed_resume, _) = labelled_seed(n, 14);
    let resume_config = ServeConfig {
        refresh_every: 30,
        checkpoint_every: 16,
        ..ServeConfig::new(dir)
    };
    let resumed = Server::start(&resume_config, seed_resume).unwrap();
    assert!(resumed.warm, "restart must recover the checkpoints");
    // Staleness budget: the recovered model serves immediately — the
    // first published generation already has points, before replay of
    // the full stream completes.
    let first = wait_for(resumed.addr(), 30, |h| h.generation >= 1);
    assert!(
        first.points > 0,
        "warm restart must serve the recovered model: {first:?}"
    );
    let done = wait_for(resumed.addr(), 30, |h| h.arrivals == n as u64);
    assert_eq!(
        done.model_fingerprint, want,
        "warm-restarted CFT stats must be bit-identical to the uninterrupted run"
    );
    resumed.shutdown_graceful().unwrap();
}
