//! Classification of error-prone data, end to end (the paper's §3–4).
//!
//! Generates the adult stand-in, injects the paper's noise model at a few
//! error levels, and compares the three classifiers of the evaluation:
//! the error-adjusted density method, the unadjusted density baseline,
//! and nearest-neighbor. Also shows the per-decision trace (which
//! subspaces voted) for one test instance.
//!
//! Run with: `cargo run --release --example classification_under_noise`

use udm_classify::{evaluate, ClassifierConfig, DensityClassifier, NnClassifier};
use udm_core::Result;
use udm_data::{stratified_split, ErrorModel, UciDataset};

fn main() -> Result<()> {
    let n = 1200;
    let seed = 11;
    println!("adult stand-in, n = {n}, q = 80 micro-clusters\n");
    println!("f     adjusted  unadjusted  nearest-neighbor");

    for f in [0.0, 1.0, 2.0, 3.0] {
        let clean = UciDataset::Adult.generate(n, seed);
        let noisy = ErrorModel::paper(f).apply(&clean, seed + 1)?;
        let split = stratified_split(&noisy, 0.3, seed + 2)?;

        let adjusted = DensityClassifier::fit(&split.train, ClassifierConfig::error_adjusted(80))?;
        let unadjusted = DensityClassifier::fit(&split.train, ClassifierConfig::unadjusted(80))?;
        let nn = NnClassifier::fit(&split.train)?;

        println!(
            "{f:<5} {:<9.4} {:<11.4} {:.4}",
            evaluate(&adjusted, &split.test)?.accuracy(),
            evaluate(&unadjusted, &split.test)?.accuracy(),
            evaluate(&nn, &split.test)?.accuracy(),
        );
    }

    // Decision trace for one instance at high noise: which subspaces were
    // discriminative for *this* point, and what did they vote?
    let clean = UciDataset::Adult.generate(n, seed);
    let noisy = ErrorModel::paper(1.0).apply(&clean, seed + 1)?;
    let split = stratified_split(&noisy, 0.3, seed + 2)?;
    let model = DensityClassifier::fit(&split.train, ClassifierConfig::error_adjusted(80))?;
    let x = split.test.point(0);
    let outcome = model.classify_detailed(x)?;
    println!(
        "\ntest instance 0 (true label {:?}): predicted {}, {} candidate subspaces evaluated",
        x.label().map(|l| l.to_string()),
        outcome.label,
        outcome.candidates_evaluated
    );
    if outcome.used_fallback {
        println!("no subspace cleared the threshold; fallback policy decided");
    }
    for s in &outcome.selected {
        println!(
            "  subspace {:<12} accuracy {:.3} -> votes {}",
            s.subspace.to_string(),
            s.accuracy,
            s.label
        );
    }
    Ok(())
}
