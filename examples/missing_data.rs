//! Missing data, imputed with error tracking — the paper's second
//! motivating use case, end to end.
//!
//! A complete dataset loses 30% of its cells (MCAR); mean imputation
//! fills the holes and records the imputation standard error as each
//! imputed cell's ψ. The error-adjusted classifier then treats imputed
//! cells as soft evidence, while the unadjusted baseline trusts them as
//! if they were measured.
//!
//! Run with: `cargo run --release --example missing_data`

use udm_classify::{evaluate, ClassifierConfig, DensityClassifier};
use udm_core::Result;
use udm_data::imputation::{impute_mean, impute_stochastic, MissingnessModel};
use udm_data::{stratified_split, UciDataset};

fn main() -> Result<()> {
    let complete = UciDataset::BreastCancer.generate(600, 3);
    let split = stratified_split(&complete, 0.3, 4)?;

    println!("breast-cancer stand-in, 600 rows, 30% of training cells knocked out\n");
    println!("missing%  imputer     adjusted  unadjusted");

    for rate in [0.0, 0.15, 0.3, 0.45] {
        let incomplete = MissingnessModel::Mcar { rate }.apply(&split.train, 5)?;
        for (name, imputed) in [
            ("mean      ", impute_mean(&incomplete)?),
            ("stochastic", impute_stochastic(&incomplete, 6)?),
        ] {
            let adj = DensityClassifier::fit(&imputed, ClassifierConfig::error_adjusted(40))?;
            let unadj = DensityClassifier::fit(&imputed, ClassifierConfig::unadjusted(40))?;
            println!(
                "{:<9.2} {name}  {:<9.4} {:.4}",
                rate,
                evaluate(&adj, &split.test)?.accuracy(),
                evaluate(&unadj, &split.test)?.accuracy(),
            );
        }
    }

    // Show what the imputer actually recorded.
    let incomplete = MissingnessModel::Mcar { rate: 0.3 }.apply(&split.train, 5)?;
    let imputed = impute_mean(&incomplete)?;
    let row = imputed
        .iter()
        .find(|p| !p.is_exact())
        .expect("some row has imputed cells");
    println!("\nan imputed row (ψ > 0 marks imputed cells):");
    for j in 0..row.dim() {
        println!(
            "  dim {j}: value {:>8.3}  ψ {:>6.3}{}",
            row.value(j),
            row.error(j),
            if row.error(j) > 0.0 {
                "  <- imputed"
            } else {
                ""
            }
        );
    }
    Ok(())
}
