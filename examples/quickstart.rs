//! Quickstart: the core objects of the library in ~5 minutes.
//!
//! Demonstrates, numerically, the two motivating pictures of the paper:
//!
//! * **Figure 1** — a test point can be "closer" to the wrong training
//!   point once errors are ignored: error-based densities fix this;
//! * **Figure 2** — a point whose error ellipse is skewed toward a
//!   farther centroid should join that centroid's cluster: the
//!   error-adjusted distance (Eq. 5) does exactly that.
//!
//! Run with: `cargo run --release --example quickstart`

use udm_kde::{ErrorKde, KdeConfig};
use udm_microcluster::{AssignmentDistance, MaintainerConfig, MicroClusterMaintainer};
use uncertain_dm::prelude::*;

fn main() -> Result<()> {
    // ----------------------------------------------------------------- //
    // 1. Uncertain points: values + per-dimension error estimates ψ.
    // ----------------------------------------------------------------- //
    let y = UncertainPoint::new(vec![3.0, 0.0], vec![0.1, 0.1])?.with_label(ClassLabel(0));
    let z = UncertainPoint::new(vec![6.0, 0.0], vec![5.0, 0.2])?.with_label(ClassLabel(1));
    println!("Y = {:?} (precise)", y.values());
    println!("Z = {:?} (ψ₀ = 5: very noisy along dim 0)", z.values());

    // The test example of Figure 1 sits at x = 4.2: Euclidean-closer to Y.
    let x = [4.2, 0.0];

    // ----------------------------------------------------------------- //
    // 2. Error-based kernel density estimation (Eqs. 3–4).
    // ----------------------------------------------------------------- //
    // Contribution of each training point to the density at x, one at a
    // time (singleton datasets), under both estimators. A fixed bandwidth
    // stands in for the Silverman rule, which needs more than one point.
    let only_y = UncertainDataset::from_points(vec![y])?;
    let only_z = UncertainDataset::from_points(vec![z])?;
    let contrib = |d: &UncertainDataset, adjust: bool| -> Result<f64> {
        let cfg = KdeConfig {
            bandwidth: udm_kde::BandwidthRule::Fixed(0.5),
            error_adjusted: adjust,
            ..KdeConfig::default()
        };
        ErrorKde::fit(d, cfg)?.density(&x)
    };
    println!("\nDensity contribution at x = {x:?}:");
    println!(
        "  ignoring errors : Y {:>10.6}  vs  Z {:>10.6}  -> Y looks closer",
        contrib(&only_y, false)?,
        contrib(&only_z, false)?
    );
    println!(
        "  error-adjusted  : Y {:>10.6}  vs  Z {:>10.6}  -> Z is the plausible neighbour",
        contrib(&only_y, true)?,
        contrib(&only_z, true)?
    );

    // ----------------------------------------------------------------- //
    // 3. Error-adjusted micro-clustering (Eq. 5, Figure 2).
    // ----------------------------------------------------------------- //
    // Two far-apart seed centroids; a noisy point Euclidean-closer to
    // centroid 2 but with its error skewed toward centroid 1.
    let seeds = [
        UncertainPoint::exact(vec![10.0, 0.0])?, // centroid 1
        UncertainPoint::exact(vec![0.0, 4.0])?,  // centroid 2
    ];
    let noisy = UncertainPoint::new(vec![0.0, 0.0], vec![12.0, 0.1])?;

    for (name, dist) in [
        ("error-adjusted", AssignmentDistance::ErrorAdjusted),
        ("euclidean     ", AssignmentDistance::Euclidean),
    ] {
        let mut m = MicroClusterMaintainer::new(
            2,
            MaintainerConfig {
                max_clusters: 2,
                distance: dist,
            },
        )?;
        for s in &seeds {
            m.insert(s)?;
        }
        let joined = m.insert(&noisy)?;
        println!(
            "assignment with {name} distance: noisy point joins centroid {}",
            joined + 1
        );
    }

    // ----------------------------------------------------------------- //
    // 4. Micro-cluster density over a subspace.
    // ----------------------------------------------------------------- //
    let stream: Vec<UncertainPoint> = (0..500)
        .map(|i| {
            let t = i as f64 * 0.618_033_988_749;
            UncertainPoint::new(
                vec![(t.fract() * 8.0) - 4.0, (i % 10) as f64 * 0.3],
                vec![0.2, 0.05 * (i % 4) as f64],
            )
            .expect("finite")
        })
        .collect();
    let big = UncertainDataset::from_points(stream)?;
    let maintainer = MicroClusterMaintainer::from_dataset(&big, MaintainerConfig::new(32))?;
    let kde =
        udm_microcluster::MicroClusterKde::fit(maintainer.clusters(), KdeConfig::error_adjusted())?;
    let s = Subspace::singleton(0)?;
    println!(
        "\n500 points compressed to {} micro-clusters; density over subspace {} at 0.0: {:.4}",
        maintainer.num_clusters(),
        s,
        kde.density_subspace(&[0.0, 0.0], s)?
    );
    Ok(())
}
