//! Horizon queries over an evolving stream: the pyramidal time frame.
//!
//! A sensor stream drifts — early readings cluster near one regime, late
//! readings near another. Snapshots of the (additive) micro-cluster
//! statistics are stored at pyramidally spaced timestamps; subtracting
//! two snapshots yields the exact summary of the window between them, so
//! "density over the last N ticks" needs only O(log T) stored summaries.
//!
//! Run with: `cargo run --release --example stream_history`

use udm_core::{Result, UncertainPoint};
use udm_kde::KdeConfig;
use udm_microcluster::pyramid::PyramidalStore;
use udm_microcluster::{MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

fn reading(t: u64) -> UncertainPoint {
    // Regime A (t < 6000): values near 0; regime B: values near 40.
    let base = if t < 6_000 { 0.0 } else { 40.0 };
    let wobble = ((t as f64) * 0.7).sin() * 2.0;
    let reliability = 0.1 + ((t % 11) as f64) * 0.05;
    UncertainPoint::new(vec![base + wobble], vec![reliability])
        .expect("finite reading")
        .with_timestamp(t)
}

fn main() -> Result<()> {
    let mut maintainer = MicroClusterMaintainer::new(1, MaintainerConfig::new(16))?;
    let mut store = PyramidalStore::new(2, 3)?;

    for t in 0..10_000u64 {
        maintainer.insert(&reading(t))?;
        if t > 0 && t % 250 == 0 {
            store.record(t, maintainer.clusters().to_vec())?;
        }
    }
    store.record(9_999, maintainer.clusters().to_vec())?;

    println!(
        "streamed 10000 readings; {} snapshots retained (pyramidal, α=2, cap 3/order)\n",
        store.len()
    );

    for horizon in [500u64, 2_000, 5_000, 10_000] {
        let window = store.window_summary(horizon)?;
        let total: u64 = window.iter().map(|c| c.n()).sum();
        let kde = MicroClusterKde::fit(&window, KdeConfig::error_adjusted())?;
        let near_a = kde.density(&[0.0])?;
        let near_b = kde.density(&[40.0])?;
        println!(
            "last {horizon:>6} ticks: {total:>5} points | density at regime A {near_a:.4}, regime B {near_b:.4} -> {}",
            if near_b > near_a { "recent regime dominates" } else { "old regime still visible" }
        );
    }
    Ok(())
}
