//! Streaming maintenance and persistence of error-based micro-clusters
//! (§2.1), including concurrent ingestion from several producer threads
//! and snapshot/restore across "restarts".
//!
//! Run with: `cargo run --release --example streaming_microclusters`

use udm_core::{Result, Subspace, UncertainPoint};
use udm_kde::KdeConfig;
use udm_microcluster::snapshot::Snapshot;
use udm_microcluster::{
    ConcurrentMaintainer, MaintainerConfig, MicroClusterKde, MicroClusterMaintainer,
};

/// A fake sensor: emits drifting readings whose error grows with sensor
/// temperature (cells measured hot are less reliable).
fn reading(sensor: u64, t: u64) -> UncertainPoint {
    let base = sensor as f64 * 2.5;
    let drift = (t as f64 * 0.01).sin();
    let temp_noise = 0.05 + 0.3 * ((t % 17) as f64 / 17.0);
    UncertainPoint::new(
        vec![base + drift, (t % 29) as f64 * 0.1],
        vec![temp_noise, 0.02],
    )
    .expect("finite reading")
    .with_timestamp(t)
}

fn main() -> Result<()> {
    // Concurrent ingestion: 4 sensor threads feed one summary.
    let maintainer = MicroClusterMaintainer::new(2, MaintainerConfig::new(24))?;
    let shared = ConcurrentMaintainer::new(maintainer);
    std::thread::scope(|scope| {
        for sensor in 0..4u64 {
            let shared = &shared;
            scope.spawn(move || {
                for t in 0..5_000u64 {
                    shared
                        .insert(&reading(sensor, t))
                        .expect("insert never fails on matching dims");
                }
            });
        }
    });
    let maintainer = shared.into_inner();
    println!(
        "ingested {} readings into {} micro-clusters",
        maintainer.points_seen(),
        maintainer.num_clusters()
    );

    // Snapshot to JSON — the durable artifact of the training pass.
    let snap = Snapshot::capture(&maintainer);
    let json = snap.to_json()?;
    println!("snapshot size: {} bytes of JSON", json.len());

    // "Restart": restore and keep streaming.
    let mut restored = Snapshot::from_json(&json)?.restore()?;
    for t in 5_000..6_000u64 {
        restored.insert(&reading(1, t))?;
    }
    println!(
        "after restore + 1000 more readings: {} points in {} clusters",
        restored.points_seen(),
        restored.num_clusters()
    );

    // Densities over different subspaces from the same compressed state —
    // the repeated-subspace-query workload that motivates micro-clusters.
    let kde = MicroClusterKde::fit(restored.clusters(), KdeConfig::error_adjusted())?;
    for dims in [vec![0], vec![1], vec![0, 1]] {
        let s = Subspace::from_dims(&dims)?;
        println!(
            "density at sensor-1 locus over subspace {s}: {:.5}",
            kde.density_subspace(&[2.5, 1.0], s)?
        );
    }
    Ok(())
}
