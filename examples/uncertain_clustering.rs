//! Clustering uncertain data (§3's "DBSCAN … direct solution" claim):
//! error-adjusted DBSCAN and k-means vs their Euclidean baselines.
//!
//! The k-means workload recreates the paper's Figure 2 situation at
//! scale: blobs are separated along dimension 0 but carry a secondary
//! signature along dimension 1. A quarter of all cells are displaced by a
//! large, *recorded* error (sparse heteroscedastic noise). A point thrown
//! along dimension 0 toward the wrong blob fools the Euclidean
//! assignment; the error-adjusted distance (Eq. 5) discounts the
//! unreliable dimension and recovers the correct blob from the clean
//! secondary dimension.
//!
//! Run with: `cargo run --release --example uncertain_clustering`

use udm_cluster::{
    adjusted_rand_index, normalized_mutual_information, Dbscan, DbscanConfig, KMeans, KMeansConfig,
};
use udm_core::{ClassLabel, Result, UncertainDataset};
use udm_data::{ErrorModel, GaussianClassSpec, MixtureGenerator};
use udm_microcluster::AssignmentDistance;

fn blobs() -> Result<MixtureGenerator> {
    MixtureGenerator::new(
        2,
        vec![
            GaussianClassSpec {
                mean: vec![0.0, 0.0],
                std: vec![0.7, 0.25],
                weight: 1.0,
            },
            GaussianClassSpec {
                mean: vec![7.0, 2.0],
                std: vec![0.7, 0.25],
                weight: 1.0,
            },
            GaussianClassSpec {
                mean: vec![14.0, 4.0],
                std: vec![0.7, 0.25],
                weight: 1.0,
            },
        ],
    )
}

fn truth_of(data: &UncertainDataset) -> Vec<ClassLabel> {
    data.iter()
        .map(|p| p.label().expect("generator labels everything"))
        .collect()
}

fn main() -> Result<()> {
    let clean = blobs()?.generate(600, 21);

    // Sparse heteroscedastic noise: 25% of cells displaced, each with a
    // large recorded error (ψ up to 3 column-σ).
    let noisy = ErrorModel::SparseUniform { f: 1.5, p: 0.25 }.apply(&clean, 22)?;
    let truth = truth_of(&noisy);
    println!("3 blobs, 600 points, sparse noise (25% of cells, up to 3σ)\n");

    for (name, dist) in [
        (
            "k-means (error-adjusted)",
            AssignmentDistance::ErrorAdjusted,
        ),
        ("k-means (euclidean)     ", AssignmentDistance::Euclidean),
    ] {
        let mut cfg = KMeansConfig::new(3);
        cfg.distance = dist;
        cfg.seed = 5;
        let result = KMeans::new(cfg)?.run(&noisy)?;
        let assignments: Vec<Option<usize>> = result.assignments.iter().map(|&a| Some(a)).collect();
        println!(
            "{name}: ARI {:.3}  NMI {:.3}  ({} iterations)",
            adjusted_rand_index(&assignments, &truth),
            normalized_mutual_information(&assignments, &truth),
            result.iterations
        );
    }

    // DBSCAN with modest fixed per-dimension errors (its density-
    // connectivity chains through optimistic distances, so the adjusted
    // variant is only meaningful when errors stay below the inter-blob
    // gap).
    let mild = ErrorModel::FixedPerDimension {
        psis: vec![0.7, 0.2],
    }
    .apply(&clean, 23)?;
    let truth = truth_of(&mild);
    println!();
    for (name, adjusted) in [
        ("DBSCAN  (error-adjusted)", true),
        ("DBSCAN  (euclidean)     ", false),
    ] {
        let cfg = DbscanConfig {
            eps: 1.1,
            min_pts: 5,
            error_adjusted: adjusted,
        };
        let result = Dbscan::new(cfg)?.run(&mild)?;
        println!(
            "{name}: ARI {:.3}  NMI {:.3}  ({} clusters, {} noise points)",
            adjusted_rand_index(&result.assignments, &truth),
            normalized_mutual_information(&result.assignments, &truth),
            result.num_clusters,
            result.num_noise()
        );
    }
    Ok(())
}
