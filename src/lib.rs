//! # uncertain-dm
//!
//! Facade crate for the `udm` workspace: a reproduction of Aggarwal,
//! *"On Density Based Transforms for Uncertain Data Mining"* (ICDE 2007).
//!
//! Re-exports the public APIs of all member crates so applications can
//! depend on a single crate:
//!
//! ```
//! use uncertain_dm::prelude::*;
//! ```

pub use udm_classify as classify;
pub use udm_cluster as cluster;
pub use udm_core as core;
pub use udm_data as data;
pub use udm_kde as kde;
pub use udm_microcluster as microcluster;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use udm_core::{
        ClassLabel, DatasetBuilder, Result, Subspace, UdmError, UncertainDataset, UncertainPoint,
    };
}
