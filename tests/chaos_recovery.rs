//! Chaos suite: corrupt a drifting labelled stream at several fault
//! rates, push it through the fault-tolerant ingest pipeline, and demand
//! that classification accuracy stays within a stated bound of the clean
//! baseline — with the per-policy counters accounting for every record.

use udm_classify::{evaluate_degraded, ChaosSetup, ClassifierConfig};
use udm_core::UncertainDataset;
use udm_data::fault::{FaultKind, FaultPlan};
use udm_data::stream::{DriftingStream, Regime};
use udm_data::synth::{GaussianClassSpec, MixtureGenerator};
use udm_microcluster::{IngestPolicy, MaintainerConfig};

/// Accuracy loss the pipeline must stay within at every drilled rate.
/// The classes are well separated, so a healthy repair/quarantine path
/// keeps the degraded model close to the clean one even at 30% faults.
const ACCURACY_BOUND: f64 = 0.15;

const TRAIN_LEN: u64 = 600;

fn drifting_set(seed: u64) -> UncertainDataset {
    // Two classes that drift between regimes but keep their labels, so a
    // single classifier is meaningful over the whole stream.
    let mixture = |centers: &[(f64, f64)]| {
        MixtureGenerator::new(
            2,
            centers
                .iter()
                .map(|&(x, y)| GaussianClassSpec::spherical(vec![x, y], 1.0, 1.0))
                .collect(),
        )
        .unwrap()
    };
    DriftingStream::new(
        vec![
            Regime {
                mixture: mixture(&[(0.0, 0.0), (8.0, 8.0)]),
                duration: TRAIN_LEN * 2 / 3,
                error_scale: 0.4,
            },
            Regime {
                mixture: mixture(&[(1.0, 1.0), (9.0, 9.0)]),
                duration: TRAIN_LEN / 3,
                error_scale: 0.6,
            },
        ],
        seed,
    )
    .unwrap()
    .generate()
}

fn setup(rate: f64, seed: u64) -> ChaosSetup {
    ChaosSetup {
        plan: FaultPlan::uniform(rate),
        seed,
        policy: IngestPolicy::default(),
        maintainer: MaintainerConfig::new(25),
        classifier: ClassifierConfig::error_adjusted(25),
    }
}

#[test]
fn accuracy_loss_is_bounded_at_three_fault_rates() {
    let train = drifting_set(41);
    let test = drifting_set(42);

    for (i, rate) in [0.05, 0.15, 0.30].into_iter().enumerate() {
        let report = evaluate_degraded(&train, &test, &setup(rate, 900 + i as u64)).unwrap();
        // Per-policy counters, reported for the record.
        println!("{report}");

        assert!(report.faults.total() > 0, "rate {rate} injected nothing");
        // Every emitted record is accounted for: the injector drops some
        // outright (burst faults), the ingestor sees the rest.
        assert_eq!(
            report.counters.arrivals,
            (train.len() as u64) - report.faults.dropped,
            "rate {rate}: arrivals must equal emitted records"
        );
        assert!(
            report.within(ACCURACY_BOUND),
            "rate {rate}: accuracy drop {:.4} exceeds bound {ACCURACY_BOUND}\n{report}",
            report.accuracy_drop()
        );
        assert!(
            report.degraded.accuracy() > 0.75,
            "rate {rate}: degraded accuracy collapsed\n{report}"
        );
    }
}

#[test]
fn repair_dominates_at_low_rates_quarantine_grows_with_stress() {
    let train = drifting_set(43);
    let test = drifting_set(44);

    let low = evaluate_degraded(&train, &test, &setup(0.05, 5)).unwrap();
    let high = evaluate_degraded(&train, &test, &setup(0.35, 5)).unwrap();
    println!("low:  {low}");
    println!("high: {high}");

    // More injected faults must translate into more policy activity, not
    // silent acceptance.
    let activity = |c: &udm_microcluster::IngestCounters| {
        c.repaired + c.quarantined + c.rejected + c.timestamp_repairs
    };
    assert!(high.faults.total() > low.faults.total());
    assert!(
        activity(&high.counters) > activity(&low.counters),
        "policy activity should grow with the fault rate\nlow {} vs high {}",
        low.counters,
        high.counters
    );
    assert!(
        high.counters.accepted < low.counters.accepted,
        "clean acceptances should shrink as faults grow"
    );
}

#[test]
fn single_kind_drills_keep_the_pipeline_usable() {
    // Each fault kind alone, at a stiff rate: the pipeline must neither
    // error out nor lose the classification signal.
    let train = drifting_set(45);
    let test = drifting_set(46);

    for kind in FaultKind::ALL {
        let mut s = setup(0.0, 77);
        s.plan = FaultPlan::only(kind, 0.25);
        let report = evaluate_degraded(&train, &test, &s).unwrap();
        assert!(
            report.within(ACCURACY_BOUND),
            "{}: drop {:.4} exceeds bound\n{report}",
            kind.name(),
            report.accuracy_drop()
        );
    }
}
