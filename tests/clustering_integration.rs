//! Integration tests for the clustering extension against generated
//! workloads with ground truth.

use udm_cluster::{
    adjusted_rand_index, normalized_mutual_information, purity, Dbscan, DbscanConfig, KMeans,
    KMeansConfig,
};
use udm_core::ClassLabel;
use udm_data::{ErrorModel, GaussianClassSpec, MixtureGenerator};
use udm_microcluster::AssignmentDistance;

fn three_blobs(n: usize, seed: u64) -> (udm_core::UncertainDataset, Vec<ClassLabel>) {
    let g = MixtureGenerator::new(
        2,
        vec![
            GaussianClassSpec::spherical(vec![0.0, 0.0], 0.5, 1.0),
            GaussianClassSpec::spherical(vec![8.0, 0.0], 0.5, 1.0),
            GaussianClassSpec::spherical(vec![4.0, 7.0], 0.5, 1.0),
        ],
    )
    .unwrap();
    let d = g.generate(n, seed);
    let truth = d.iter().map(|p| p.label().unwrap()).collect();
    (d, truth)
}

#[test]
fn kmeans_recovers_clean_blobs_perfectly() {
    let (d, truth) = three_blobs(300, 1);
    let r = KMeans::new(KMeansConfig::new(3)).unwrap().run(&d).unwrap();
    let assignments: Vec<Option<usize>> = r.assignments.iter().map(|&a| Some(a)).collect();
    assert!(adjusted_rand_index(&assignments, &truth) > 0.99);
    assert!(purity(&assignments, &truth) > 0.99);
}

#[test]
fn dbscan_recovers_clean_blobs() {
    let (d, truth) = three_blobs(300, 2);
    let r = Dbscan::new(DbscanConfig::new(1.0, 4))
        .unwrap()
        .run(&d)
        .unwrap();
    assert_eq!(r.num_clusters, 3);
    assert!(adjusted_rand_index(&r.assignments, &truth) > 0.95);
}

#[test]
fn error_adjusted_kmeans_at_least_as_good_under_sparse_noise() {
    // Averaged over seeds: the adjusted assignment should not lose to
    // Euclidean when errors are informative.
    let mut adj_total = 0.0;
    let mut euc_total = 0.0;
    for seed in [3, 5, 8, 13] {
        let (clean, _) = three_blobs(400, seed);
        let noisy = ErrorModel::SparseUniform { f: 1.2, p: 0.25 }
            .apply(&clean, seed + 100)
            .unwrap();
        let truth: Vec<ClassLabel> = noisy.iter().map(|p| p.label().unwrap()).collect();
        for (dist, total) in [
            (AssignmentDistance::ErrorAdjusted, &mut adj_total),
            (AssignmentDistance::Euclidean, &mut euc_total),
        ] {
            let mut cfg = KMeansConfig::new(3);
            cfg.distance = dist;
            cfg.seed = seed;
            let r = KMeans::new(cfg).unwrap().run(&noisy).unwrap();
            let a: Vec<Option<usize>> = r.assignments.iter().map(|&x| Some(x)).collect();
            *total += adjusted_rand_index(&a, &truth);
        }
    }
    assert!(
        adj_total >= euc_total - 0.05,
        "adjusted {adj_total} vs euclidean {euc_total}"
    );
}

#[test]
fn metrics_are_consistent_across_implementations() {
    let (d, truth) = three_blobs(200, 7);
    let r = KMeans::new(KMeansConfig::new(3)).unwrap().run(&d).unwrap();
    let a: Vec<Option<usize>> = r.assignments.iter().map(|&x| Some(x)).collect();
    let ari = adjusted_rand_index(&a, &truth);
    let nmi = normalized_mutual_information(&a, &truth);
    let pur = purity(&a, &truth);
    // On a near-perfect clustering all three agree at the top end.
    assert!(ari > 0.95 && nmi > 0.95 && pur > 0.95, "{ari} {nmi} {pur}");
}

#[test]
fn heavy_noise_degrades_euclidean_dbscan_gracefully() {
    let (clean, _) = three_blobs(300, 9);
    let noisy = ErrorModel::paper(2.0).apply(&clean, 10).unwrap();
    let r = Dbscan::new(DbscanConfig {
        eps: 1.0,
        min_pts: 4,
        error_adjusted: false,
    })
    .unwrap()
    .run(&noisy)
    .unwrap();
    // At this noise level structure is destroyed: lots of noise points is
    // the *correct* outcome, not a crash.
    assert!(r.num_noise() > 50);
}
