//! Cross-crate consistency of the density machinery: the compressed
//! micro-cluster estimator must agree with the exact point-based
//! estimator in the limits the paper's construction guarantees.

use udm_core::{Subspace, UncertainDataset, UncertainPoint};
use udm_data::{ErrorModel, UciDataset};
use udm_kde::quadrature::trapezoid;
use udm_kde::{ErrorKde, KdeConfig};
use udm_microcluster::{MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

fn noisy_1d(n: usize, seed: u64) -> UncertainDataset {
    let clean = UncertainDataset::from_points(
        (0..n)
            .map(|i| UncertainPoint::exact(vec![((i * 37) % 100) as f64 / 10.0]).unwrap())
            .collect(),
    )
    .unwrap();
    ErrorModel::paper(0.8).apply(&clean, seed).unwrap()
}

#[test]
fn microcluster_kde_equals_exact_kde_at_full_granularity() {
    // q = N: every micro-cluster is a single point, Δ = ψ, so Eqs. 9–10
    // reduce exactly to Eqs. 3–4.
    let d = noisy_1d(80, 1);
    let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(80)).unwrap();
    let compressed = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
    let exact = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
    for i in 0..50 {
        let x = -5.0 + 0.4 * i as f64;
        let a = compressed.density(&[x]).unwrap();
        let b = exact.density(&[x]).unwrap();
        assert!((a - b).abs() < 1e-9, "x={x}: {a} vs {b}");
    }
}

#[test]
fn compression_error_shrinks_with_more_clusters() {
    let d = noisy_1d(400, 2);
    let exact = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
    let l1_error = |q: usize| {
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(q)).unwrap();
        let kde = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
        let mut total = 0.0;
        for i in 0..80 {
            let x = -10.0 + 0.35 * i as f64;
            total += (kde.density(&[x]).unwrap() - exact.density(&[x]).unwrap()).abs();
        }
        total
    };
    let coarse = l1_error(5);
    let fine = l1_error(200);
    assert!(
        fine < coarse,
        "error should shrink with q: q=5 -> {coarse}, q=200 -> {fine}"
    );
}

#[test]
fn both_estimators_integrate_to_one_on_noisy_data() {
    let d = noisy_1d(150, 3);
    let exact = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
    let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(25)).unwrap();
    let compressed = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
    let mass_exact = trapezoid(|x| exact.density(&[x]).unwrap(), -80.0, 90.0, 30_001);
    let mass_comp = trapezoid(|x| compressed.density(&[x]).unwrap(), -80.0, 90.0, 30_001);
    assert!((mass_exact - 1.0).abs() < 1e-4, "exact mass {mass_exact}");
    assert!(
        (mass_comp - 1.0).abs() < 1e-4,
        "compressed mass {mass_comp}"
    );
}

#[test]
fn subspace_density_consistent_with_projection() {
    // Estimating over a subspace of the full estimator must equal
    // estimating over the projected dataset (same bandwidth rule).
    let clean = UciDataset::BreastCancer.generate(120, 4);
    let d = ErrorModel::paper(1.0).apply(&clean, 5).unwrap();
    let s = Subspace::from_dims(&[1, 4, 7]).unwrap();

    let full = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
    let projected_data = d.project(s).unwrap();
    let projected = ErrorKde::fit(&projected_data, KdeConfig::default()).unwrap();

    let probe = d.point(0);
    let via_subspace = full.density_subspace(probe.values(), s).unwrap();
    let proj_probe = probe.project(s).unwrap();
    let direct = projected.density(proj_probe.values()).unwrap();
    assert!(
        (via_subspace - direct).abs() < 1e-12,
        "{via_subspace} vs {direct}"
    );
}

#[test]
fn unadjusted_estimators_agree_between_crates() {
    // With errors zeroed, the exact estimator and a q=N micro-cluster
    // estimator must coincide with the classic Silverman KDE.
    let d = noisy_1d(60, 6).without_errors();
    let exact = ErrorKde::fit(&d, KdeConfig::unadjusted()).unwrap();
    let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(60)).unwrap();
    let compressed = MicroClusterKde::fit(m.clusters(), KdeConfig::unadjusted()).unwrap();
    for x in [-1.0, 0.0, 3.3, 7.7, 12.0] {
        let a = exact.density(&[x]).unwrap();
        let b = compressed.density(&[x]).unwrap();
        assert!((a - b).abs() < 1e-9, "x={x}: {a} vs {b}");
    }
}

#[test]
fn query_error_convolution_widens_but_preserves_mass() {
    let d = noisy_1d(100, 7);
    let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(20)).unwrap();
    let kde = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
    let s = Subspace::singleton(0).unwrap();
    let errs = [3.0];
    // Convolved density is a proper density too (mass 1 over x).
    let mass = trapezoid(
        |x| {
            kde.density_subspace_with_error(&[x], Some(&errs), s)
                .unwrap()
        },
        -120.0,
        130.0,
        30_001,
    );
    assert!((mass - 1.0).abs() < 1e-4, "convolved mass {mass}");
    // And it is flatter: lower peak than the unconvolved density.
    let peak_plain = (0..200)
        .map(|i| kde.density(&[-10.0 + 0.1 * i as f64]).unwrap())
        .fold(0.0f64, f64::max);
    let peak_conv = (0..200)
        .map(|i| {
            kde.density_subspace_with_error(&[-10.0 + 0.1 * i as f64], Some(&errs), s)
                .unwrap()
        })
        .fold(0.0f64, f64::max);
    assert!(peak_conv < peak_plain);
}
