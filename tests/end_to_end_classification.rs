//! Integration tests spanning data generation, noise injection,
//! micro-clustering, and classification — the paper's full pipeline.

use udm_classify::{
    evaluate, evaluate_parallel, ClassifierConfig, DensityClassifier, NnClassifier,
};
use udm_core::ClassLabel;
use udm_data::{stratified_split, ErrorModel, UciDataset};

/// Train/test split of a perturbed stand-in at error level `f`.
fn noisy_split(ds: UciDataset, n: usize, f: f64, seed: u64) -> udm_data::Split {
    let clean = ds.generate(n, seed);
    let noisy = ErrorModel::paper(f).apply(&clean, seed + 1).unwrap();
    stratified_split(&noisy, 0.3, seed + 2).unwrap()
}

#[test]
fn every_standin_beats_random_at_zero_error() {
    for ds in UciDataset::ALL {
        let split = noisy_split(ds, 400, 0.0, 3);
        let model =
            DensityClassifier::fit(&split.train, ClassifierConfig::error_adjusted(30)).unwrap();
        let report = evaluate(&model, &split.test).unwrap();
        // The majority prior is the strongest trivial baseline.
        let majority = ds.class_priors().iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(
            report.accuracy() >= majority - 0.05,
            "{}: accuracy {} vs majority {}",
            ds.name(),
            report.accuracy(),
            majority
        );
    }
}

#[test]
fn adjusted_and_unadjusted_identical_at_zero_error() {
    // §4: "the two density based classifiers had exactly the same accuracy
    // when the error-parameter was zero."
    let split = noisy_split(UciDataset::BreastCancer, 300, 0.0, 5);
    let adj = DensityClassifier::fit(&split.train, ClassifierConfig::error_adjusted(25)).unwrap();
    let unadj = DensityClassifier::fit(&split.train, ClassifierConfig::unadjusted(25)).unwrap();
    for p in split.test.iter() {
        use udm_classify::Classifier;
        assert_eq!(adj.classify(p).unwrap(), unadj.classify(p).unwrap());
    }
}

#[test]
fn error_adjustment_helps_under_heavy_noise() {
    // The paper's headline claim, aggregated over seeds to be robust: at
    // f = 2 the adjusted method is at least as accurate as the unadjusted
    // baseline and strictly better than nearest neighbor on adult.
    let mut adj_total = 0.0;
    let mut unadj_total = 0.0;
    let mut nn_total = 0.0;
    let seeds = [11, 23, 37];
    for &seed in &seeds {
        let split = noisy_split(UciDataset::Adult, 500, 2.0, seed);
        let adj =
            DensityClassifier::fit(&split.train, ClassifierConfig::error_adjusted(40)).unwrap();
        let unadj = DensityClassifier::fit(&split.train, ClassifierConfig::unadjusted(40)).unwrap();
        let nn = NnClassifier::fit(&split.train).unwrap();
        adj_total += evaluate(&adj, &split.test).unwrap().accuracy();
        unadj_total += evaluate(&unadj, &split.test).unwrap().accuracy();
        nn_total += evaluate(&nn, &split.test).unwrap().accuracy();
    }
    let k = seeds.len() as f64;
    let (adj, unadj, nn) = (adj_total / k, unadj_total / k, nn_total / k);
    assert!(adj >= unadj - 0.01, "adjusted {adj} vs unadjusted {unadj}");
    assert!(adj > nn + 0.02, "adjusted {adj} vs nn {nn}");
}

#[test]
fn nn_collapses_with_noise_but_adjusted_does_not() {
    let clean_split = noisy_split(UciDataset::ForestCover, 600, 0.0, 9);
    let noisy_split_ = noisy_split(UciDataset::ForestCover, 600, 3.0, 9);

    let nn_clean = NnClassifier::fit(&clean_split.train).unwrap();
    let nn_noisy = NnClassifier::fit(&noisy_split_.train).unwrap();
    let acc_clean = evaluate(&nn_clean, &clean_split.test).unwrap().accuracy();
    let acc_noisy = evaluate(&nn_noisy, &noisy_split_.test).unwrap().accuracy();
    assert!(
        acc_clean - acc_noisy > 0.25,
        "nn should collapse: {acc_clean} -> {acc_noisy}"
    );

    let adj =
        DensityClassifier::fit(&noisy_split_.train, ClassifierConfig::error_adjusted(40)).unwrap();
    let adj_noisy = evaluate(&adj, &noisy_split_.test).unwrap().accuracy();
    assert!(
        adj_noisy > acc_noisy,
        "adjusted {adj_noisy} should beat collapsed nn {acc_noisy}"
    );
}

#[test]
fn parallel_evaluation_matches_sequential_for_real_model() {
    let split = noisy_split(UciDataset::BreastCancer, 250, 1.0, 13);
    let model = DensityClassifier::fit(&split.train, ClassifierConfig::error_adjusted(20)).unwrap();
    let seq = evaluate(&model, &split.test).unwrap();
    let par = evaluate_parallel(&model, &split.test, 4).unwrap();
    assert_eq!(seq.correct, par.correct);
    assert_eq!(seq.confusion, par.confusion);
}

#[test]
fn classifier_is_deterministic() {
    let split = noisy_split(UciDataset::Adult, 300, 1.0, 17);
    let m1 = DensityClassifier::fit(&split.train, ClassifierConfig::error_adjusted(30)).unwrap();
    let m2 = DensityClassifier::fit(&split.train, ClassifierConfig::error_adjusted(30)).unwrap();
    use udm_classify::Classifier;
    for p in split.test.iter().take(50) {
        assert_eq!(m1.classify(p).unwrap(), m2.classify(p).unwrap());
    }
}

#[test]
fn multiclass_labels_all_reachable() {
    // Forest cover has 7 classes; with enough clean data and clusters the
    // model should predict more than just the two majority classes.
    let split = noisy_split(UciDataset::ForestCover, 800, 0.0, 19);
    let model = DensityClassifier::fit(&split.train, ClassifierConfig::error_adjusted(60)).unwrap();
    use udm_classify::Classifier;
    let mut predicted: std::collections::BTreeSet<ClassLabel> = Default::default();
    for p in split.test.iter() {
        predicted.insert(model.classify(p).unwrap());
    }
    assert!(
        predicted.len() >= 3,
        "only {} distinct labels predicted",
        predicted.len()
    );
}
