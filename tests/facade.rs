//! Facade-level tests: the `uncertain-dm` crate's re-exports and prelude
//! must be sufficient for a downstream user to run the full method
//! without naming internal crates.

use uncertain_dm::prelude::*;

#[test]
fn prelude_supports_the_readme_quickstart() {
    let train = UncertainDataset::from_points(vec![
        UncertainPoint::new(vec![1.0, 2.0], vec![0.1, 0.0])
            .unwrap()
            .with_label(ClassLabel(0)),
        UncertainPoint::new(vec![1.2, 2.2], vec![0.2, 0.1])
            .unwrap()
            .with_label(ClassLabel(0)),
        UncertainPoint::new(vec![5.0, 6.0], vec![0.0, 0.3])
            .unwrap()
            .with_label(ClassLabel(1)),
        UncertainPoint::new(vec![5.5, 6.5], vec![0.4, 0.0])
            .unwrap()
            .with_label(ClassLabel(1)),
    ])
    .unwrap();

    use uncertain_dm::classify::{Classifier, ClassifierConfig, DensityClassifier};
    let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(4)).unwrap();
    let x = UncertainPoint::new(vec![1.1, 2.1], vec![0.3, 0.3]).unwrap();
    assert_eq!(model.classify(&x).unwrap(), ClassLabel(0));
}

#[test]
fn module_reexports_cover_every_crate() {
    // Touch one item per re-exported crate so renames break this test.
    let _k = uncertain_dm::kde::KdeConfig::default();
    let _m = uncertain_dm::microcluster::MaintainerConfig::new(4);
    let _c = uncertain_dm::classify::ClassifierConfig::default();
    let _l = uncertain_dm::cluster::KMeansConfig::new(2);
    let _d = uncertain_dm::data::ErrorModel::paper(1.0);
    let s = uncertain_dm::core::Subspace::from_dims(&[0, 1]).unwrap();
    assert_eq!(s.cardinality(), 2);
}

#[test]
fn error_type_flows_through_the_facade() {
    fn helper() -> Result<UncertainPoint> {
        UncertainPoint::new(vec![1.0], vec![-1.0]) // invalid: negative error
    }
    let e = helper().unwrap_err();
    assert!(matches!(e, UdmError::InvalidValue { .. }));
}
