//! Persistence-oriented integration tests: CSV and snapshot roundtrips
//! embedded in the full training pipeline.

use udm_classify::{Classifier, ClassifierConfig, DensityClassifier};
use udm_data::csv_io::{read_csv, write_csv};
use udm_data::{ErrorModel, UciDataset};
use udm_kde::KdeConfig;
use udm_microcluster::snapshot::Snapshot;
use udm_microcluster::{MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

#[test]
fn csv_roundtrip_preserves_training_behaviour() {
    let clean = UciDataset::BreastCancer.generate(200, 1);
    let noisy = ErrorModel::paper(1.0).apply(&clean, 2).unwrap();

    let mut buf = Vec::new();
    write_csv(&mut buf, &noisy).unwrap();
    let reloaded = read_csv(&buf[..], None).unwrap();
    assert_eq!(reloaded, noisy);

    // Models trained on the original and the reloaded data must agree.
    let m1 = DensityClassifier::fit(&noisy, ClassifierConfig::error_adjusted(20)).unwrap();
    let m2 = DensityClassifier::fit(&reloaded, ClassifierConfig::error_adjusted(20)).unwrap();
    for p in noisy.iter().take(40) {
        assert_eq!(m1.classify(p).unwrap(), m2.classify(p).unwrap());
    }
}

#[test]
fn snapshot_restores_equivalent_densities() {
    let clean = UciDataset::Adult.generate(300, 3);
    let noisy = ErrorModel::paper(1.5).apply(&clean, 4).unwrap();
    let maintainer =
        MicroClusterMaintainer::from_dataset(&noisy, MaintainerConfig::new(30)).unwrap();

    let json = Snapshot::capture(&maintainer).to_json().unwrap();
    let restored = Snapshot::from_json(&json).unwrap().restore().unwrap();

    let kde_a = MicroClusterKde::fit(maintainer.clusters(), KdeConfig::default()).unwrap();
    let kde_b = MicroClusterKde::fit(restored.clusters(), KdeConfig::default()).unwrap();
    for p in noisy.iter().take(25) {
        let a = kde_a.density(p.values()).unwrap();
        let b = kde_b.density(p.values()).unwrap();
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn snapshot_then_continue_streaming_matches_uninterrupted() {
    let clean = UciDataset::BreastCancer.generate(200, 5);
    let noisy = ErrorModel::paper(0.5).apply(&clean, 6).unwrap();
    let (first, second) = {
        let pts = noisy.points();
        (pts[..120].to_vec(), pts[120..].to_vec())
    };

    // Uninterrupted run.
    let mut direct = MicroClusterMaintainer::new(noisy.dim(), MaintainerConfig::new(15)).unwrap();
    for p in first.iter().chain(second.iter()) {
        direct.insert(p).unwrap();
    }

    // Interrupted by a snapshot/restore in the middle.
    let mut before = MicroClusterMaintainer::new(noisy.dim(), MaintainerConfig::new(15)).unwrap();
    for p in &first {
        before.insert(p).unwrap();
    }
    let json = Snapshot::capture(&before).to_json().unwrap();
    let mut resumed = Snapshot::from_json(&json).unwrap().restore().unwrap();
    for p in &second {
        resumed.insert(p).unwrap();
    }

    assert_eq!(direct.points_seen(), resumed.points_seen());
    assert_eq!(direct.num_clusters(), resumed.num_clusters());
    for (a, b) in direct.clusters().iter().zip(resumed.clusters().iter()) {
        assert_eq!(a.n(), b.n());
        for j in 0..noisy.dim() {
            assert!((a.cf1()[j] - b.cf1()[j]).abs() < 1e-9);
            assert!((a.cf2()[j] - b.cf2()[j]).abs() < 1e-9);
            assert!((a.ef2()[j] - b.ef2()[j]).abs() < 1e-9);
        }
    }
}
