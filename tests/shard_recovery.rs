//! Sharded fault-domain drill: partition a corrupted stream across shard
//! workers, kill some of them mid-ingest, and demand that the merged
//! model after warm restarts is *bit-identical* to the no-fault sharded
//! run — and that a permanently lost shard degrades coverage and
//! accuracy by exactly the advertised amount, no more.

// Coverage is a ratio of small integers (contributing/S) and the drills
// assert it *exactly* — approximate comparison would hide a wrong count.
#![allow(clippy::float_cmp)]

use std::path::PathBuf;
use udm_classify::{evaluate_sharded_degraded, ChaosSetup, ClassifierConfig};
use udm_core::UncertainDataset;
use udm_data::fault::{FaultPlan, FaultyStream, RawRecord};
use udm_data::stream::{DriftingStream, Regime};
use udm_data::synth::{GaussianClassSpec, MixtureGenerator};
use udm_microcluster::{
    IngestPolicy, KillPlan, MaintainerConfig, ShardPlan, ShardState, ShardSupervisor,
};

const TRAIN_LEN: u64 = 600;

/// Accuracy loss the degraded (one-shard-down) model must stay within.
/// Losing 1 of 4 well-mixed partitions removes ~25% of the training
/// points uniformly at random, which barely moves the class densities.
const ACCURACY_BOUND: f64 = 0.15;

fn drill_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join("udm_shard_recovery").join(name)
}

fn drifting_set(seed: u64) -> UncertainDataset {
    let mixture = |centers: &[(f64, f64)]| {
        MixtureGenerator::new(
            2,
            centers
                .iter()
                .map(|&(x, y)| GaussianClassSpec::spherical(vec![x, y], 1.0, 1.0))
                .collect(),
        )
        .unwrap()
    };
    DriftingStream::new(
        vec![
            Regime {
                mixture: mixture(&[(0.0, 0.0), (8.0, 8.0)]),
                duration: TRAIN_LEN * 2 / 3,
                error_scale: 0.4,
            },
            Regime {
                mixture: mixture(&[(1.0, 1.0), (9.0, 9.0)]),
                duration: TRAIN_LEN / 3,
                error_scale: 0.6,
            },
        ],
        seed,
    )
    .unwrap()
    .generate()
}

fn faulty_records(seed: u64) -> Vec<RawRecord> {
    let faulty =
        FaultyStream::new(&drifting_set(seed), FaultPlan::uniform(0.12), seed + 1).unwrap();
    let (records, log) = faulty.records();
    assert!(log.total() > 20, "fault mix too thin to drill: {log}");
    records
}

fn supervisor(name: &str, shards: usize) -> ShardSupervisor {
    let mut plan = ShardPlan::new(shards, drill_dir(name));
    plan.checkpoint_every = 16;
    plan.backoff_base_ms = 0;
    ShardSupervisor::new(2, MaintainerConfig::new(25), IngestPolicy::default(), plan).unwrap()
}

#[test]
fn arbitrary_shard_kills_recover_bit_identically() {
    let records = faulty_records(41);

    // Reference: the same partitioning with no faults injected.
    let mut clean = supervisor("clean", 4);
    clean.run(&records, &KillPlan::none()).unwrap();
    let (clean_model, clean_cov, clean_report) = clean.finish().unwrap();
    assert_eq!(clean_cov, 1.0);

    // Drill: two shards killed at arbitrary partition offsets NOT
    // aligned to the checkpoint cadence, so genuine tails are replayed
    // from each shard's own versioned checkpoint.
    let kills = KillPlan::none().kill_at(1, 37).kill_at(3, 101);
    let mut drilled = supervisor("killed", 4);
    drilled.run(&records, &kills).unwrap();
    let (model, coverage, report) = drilled.finish().unwrap();
    println!("{report}");

    assert_eq!(coverage, 1.0, "all shards must recover");
    assert_eq!(report.live_shards(), 4);
    assert_eq!(report.total_restarts(), 2);
    assert!(
        report.total_replayed() > 0,
        "warm restarts must replay a partition tail"
    );

    // Bit-identical merged CFT statistics: MicroCluster's PartialEq is
    // exact f64 equality, and the canonical merge order makes the
    // comparison insensitive to which shard finished last.
    assert_eq!(model, clean_model);
    assert_eq!(model.aggregate(), clean_model.aggregate());
    assert_eq!(report.merged_counters(), clean_report.merged_counters());

    std::fs::remove_dir_all(drill_dir("clean")).ok();
    std::fs::remove_dir_all(drill_dir("killed")).ok();
}

#[test]
fn permanently_down_shard_serves_at_fractional_coverage() {
    let records = faulty_records(43);

    let mut degraded = supervisor("perma", 4);
    degraded
        .run(&records, &KillPlan::none().permanently_down(2))
        .unwrap();
    let (model, coverage, report) = degraded.finish().unwrap();
    println!("{report}");

    assert_eq!(coverage, 0.75, "coverage must be (S-1)/S");
    assert_eq!(report.live_shards(), 3);
    assert_eq!(report.per_shard[2].state, ShardState::Dead);

    // The merged model holds exactly the surviving partitions' points:
    // the dead shard's contribution is what separates it from a no-fault
    // run over the same partitioning.
    let mut reference = supervisor("perma_ref", 4);
    reference.run(&records, &KillPlan::none()).unwrap();
    let (full_model, _, full_report) = reference.finish().unwrap();
    let lost = full_report.per_shard[2]
        .counters
        .as_ref()
        .map(|c| c.accepted + c.repaired)
        .unwrap_or(0);
    assert!(lost > 0, "shard 2 must have owned part of the stream");
    assert_eq!(model.total_points() + lost, full_model.total_points());

    std::fs::remove_dir_all(drill_dir("perma")).ok();
    std::fs::remove_dir_all(drill_dir("perma_ref")).ok();
}

#[test]
fn degraded_serving_bounds_accuracy_loss() {
    let train = drifting_set(45);
    let test = drifting_set(46);
    let setup = ChaosSetup {
        plan: FaultPlan::uniform(0.10),
        seed: 9,
        policy: IngestPolicy::default(),
        maintainer: MaintainerConfig::new(25),
        classifier: ClassifierConfig::error_adjusted(25),
    };

    let report = evaluate_sharded_degraded(&train, &test, &setup, 4, &[2]).unwrap();
    println!("{report}");

    assert_eq!(report.coverage, 0.75);
    assert_eq!(report.shards, 4);
    assert!(
        report.within(ACCURACY_BOUND),
        "one lost shard of four must not cost more than {ACCURACY_BOUND}: drop {:.4}\n{report}",
        report.accuracy_drop()
    );
    assert!(
        report.degraded.accuracy() > 0.75,
        "degraded accuracy collapsed\n{report}"
    );
}
