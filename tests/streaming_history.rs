//! Cross-crate integration: streaming maintenance, pyramidal snapshots,
//! horizon-scoped densities, macro-clustering and outlier detection all
//! driven from one evolving stream.

use udm_cluster::{macro_cluster, MacroClusterConfig, OutlierConfig, OutlierDetector};
use udm_core::{UncertainDataset, UncertainPoint};
use udm_kde::KdeConfig;
use udm_microcluster::pyramid::PyramidalStore;
use udm_microcluster::{diagnose, MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

fn reading(t: u64) -> UncertainPoint {
    let base = if t < 3_000 { 0.0 } else { 25.0 };
    let wobble = ((t % 17) as f64 - 8.0) * 0.2;
    UncertainPoint::new(vec![base + wobble, -base + wobble], vec![0.2, 0.1])
        .unwrap()
        .with_timestamp(t)
}

fn stream_summary() -> (MicroClusterMaintainer, PyramidalStore) {
    let mut m = MicroClusterMaintainer::new(2, MaintainerConfig::new(12)).unwrap();
    let mut store = PyramidalStore::new(2, 3).unwrap();
    for t in 0..6_000u64 {
        m.insert(&reading(t)).unwrap();
        if t > 0 && t % 200 == 0 {
            store.record(t, m.clusters().to_vec()).unwrap();
        }
    }
    store.record(5_999, m.clusters().to_vec()).unwrap();
    (m, store)
}

#[test]
fn horizon_density_reflects_regime_change() {
    let (_, store) = stream_summary();

    // Recent window: regime B only.
    let recent = store.window_summary(1_000).unwrap();
    let kde_recent = MicroClusterKde::fit(&recent, KdeConfig::error_adjusted()).unwrap();
    let at_b = kde_recent.density(&[25.0, -25.0]).unwrap();
    let at_a = kde_recent.density(&[0.0, 0.0]).unwrap();
    assert!(at_b > at_a * 10.0, "recent window: B {at_b} vs A {at_a}");

    // Full history: regime A dominates by count.
    let all = store.window_summary(1_000_000).unwrap();
    let total: u64 = all.iter().map(|c| c.n()).sum();
    assert_eq!(total, 6_000);
}

#[test]
fn diagnostics_track_the_stream() {
    let (m, _) = stream_summary();
    let diag = diagnose(m.clusters()).unwrap();
    assert_eq!(diag.total_points, 6_000);
    assert_eq!(diag.clusters, 12);
    assert!(diag.mean_occupancy >= 400.0);
}

#[test]
fn macro_clustering_the_stream_finds_both_regimes() {
    let (m, _) = stream_summary();
    let macro_c = macro_cluster(m.clusters(), MacroClusterConfig::new(2)).unwrap();
    let a = macro_c
        .assign(&UncertainPoint::exact(vec![0.0, 0.0]).unwrap())
        .unwrap();
    let b = macro_c
        .assign(&UncertainPoint::exact(vec![25.0, -25.0]).unwrap())
        .unwrap();
    assert_ne!(a, b);
    assert_eq!(macro_c.weights.iter().sum::<u64>(), 6_000);
    // Regimes are evenly sized.
    let ratio = macro_c.weights[0] as f64 / macro_c.weights[1] as f64;
    assert!((0.5..2.0).contains(&ratio), "weights {:?}", macro_c.weights);
}

#[test]
fn outlier_detection_on_the_stream() {
    let points: Vec<UncertainPoint> = (0..4_000).map(reading).collect();
    let data = UncertainDataset::from_points(points).unwrap();
    let det = OutlierDetector::fit(&data, OutlierConfig::new(24)).unwrap();
    // A reading from neither regime is anomalous; regime members are not.
    assert!(det
        .is_outlier(&UncertainPoint::new(vec![100.0, 100.0], vec![0.2, 0.1]).unwrap())
        .unwrap());
    assert!(!det.is_outlier(&reading(100)).unwrap());
    assert!(!det.is_outlier(&reading(3_500)).unwrap());
}
