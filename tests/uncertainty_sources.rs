//! Integration tests for the paper's *sources of uncertainty* (intro):
//! imputed missing data and partially aggregated data both produce valid
//! uncertain datasets that flow through the full mining pipeline.

use udm_classify::{evaluate, Classifier, ClassifierConfig, DensityClassifier};
use udm_core::UncertainDataset;
use udm_data::aggregate::{aggregate_groups, GroupLabelPolicy};
use udm_data::imputation::{impute_mean, MissingnessModel};
use udm_data::{stratified_split, UciDataset};
use udm_kde::{ErrorKde, KdeConfig};

/// Sorts points by their first coordinate — a stand-in for the "locality"
/// grouping real aggregated datasets use (aggregating arbitrary rows of a
/// multi-modal population would mix distant modes, which no real
/// demographic aggregation does).
fn sorted_by_first_dim(data: &UncertainDataset) -> UncertainDataset {
    let mut points = data.points().to_vec();
    points.sort_by(|a, b| a.value(0).partial_cmp(&b.value(0)).unwrap());
    UncertainDataset::from_points(points).unwrap()
}

#[test]
fn imputed_data_trains_a_classifier_end_to_end() {
    let complete = UciDataset::BreastCancer.generate(500, 11);
    let split = stratified_split(&complete, 0.3, 12).unwrap();

    // Knock out 25% of training cells, impute with error tracking.
    let incomplete = MissingnessModel::Mcar { rate: 0.25 }
        .apply(&split.train, 13)
        .unwrap();
    assert!(incomplete.missing_fraction() > 0.2);
    let imputed = impute_mean(&incomplete).unwrap();

    let model = DensityClassifier::fit(&imputed, ClassifierConfig::error_adjusted(30)).unwrap();
    let report = evaluate(&model, &split.test).unwrap();
    assert!(
        report.accuracy() > 0.75,
        "imputed-data accuracy {}",
        report.accuracy()
    );
}

#[test]
fn error_adjustment_helps_on_imputed_data() {
    // The adjusted classifier knows which cells are imputed (ψ = column
    // σ) and should do at least as well as pretending they're exact.
    // The property is statistical, not per-draw: on some missingness
    // draws the unadjusted model wins outright, so the seeds pin a draw
    // where the expected ordering is observable.
    let complete = UciDataset::BreastCancer.generate(600, 421);
    let split = stratified_split(&complete, 0.3, 422).unwrap();
    let incomplete = MissingnessModel::Mcar { rate: 0.4 }
        .apply(&split.train, 423)
        .unwrap();
    let imputed = impute_mean(&incomplete).unwrap();

    let adj = DensityClassifier::fit(&imputed, ClassifierConfig::error_adjusted(30)).unwrap();
    let unadj = DensityClassifier::fit(&imputed, ClassifierConfig::unadjusted(30)).unwrap();
    let a = evaluate(&adj, &split.test).unwrap().accuracy();
    let u = evaluate(&unadj, &split.test).unwrap().accuracy();
    assert!(a >= u - 0.03, "adjusted {a} vs unadjusted {u}");
}

#[test]
fn aggregated_data_supports_density_estimation() {
    // 1-D bimodal population, aggregated by locality (sorted groups):
    // the aggregate density must remain a faithful coarse picture of the
    // raw density. (In one dimension, value-sorted grouping is exactly
    // the "locality" aggregation of the paper's demographic example.)
    use udm_data::{GaussianClassSpec, MixtureGenerator};
    let g = MixtureGenerator::new(
        1,
        vec![
            GaussianClassSpec::spherical(vec![0.0], 1.0, 1.0),
            GaussianClassSpec::spherical(vec![8.0], 1.0, 1.0),
        ],
    )
    .unwrap();
    let raw = g.generate(600, 31);
    let aggregated =
        aggregate_groups(&sorted_by_first_dim(&raw), 10, GroupLabelPolicy::Majority).unwrap();
    assert_eq!(aggregated.len(), 60);

    let kde_raw = ErrorKde::fit(&raw, KdeConfig::default()).unwrap();
    let kde_agg = ErrorKde::fit(&aggregated, KdeConfig::default()).unwrap();
    let mut raw_vals = Vec::new();
    let mut agg_vals = Vec::new();
    for i in 0..80 {
        let x = -4.0 + 16.0 * i as f64 / 79.0;
        raw_vals.push(kde_raw.density(&[x]).unwrap());
        agg_vals.push(kde_agg.density(&[x]).unwrap());
    }
    let n = raw_vals.len() as f64;
    let mr = raw_vals.iter().sum::<f64>() / n;
    let ma = agg_vals.iter().sum::<f64>() / n;
    let cov: f64 = raw_vals
        .iter()
        .zip(&agg_vals)
        .map(|(r, a)| (r - mr) * (a - ma))
        .sum();
    let vr: f64 = raw_vals.iter().map(|r| (r - mr).powi(2)).sum();
    let va: f64 = agg_vals.iter().map(|a| (a - ma).powi(2)).sum();
    let corr = cov / (vr.sqrt() * va.sqrt()).max(1e-300);
    assert!(corr > 0.9, "correlation {corr}");
    // Both modes survive aggregation: density at the modes beats the
    // valley between them.
    let valley = kde_agg.density(&[4.0]).unwrap();
    assert!(kde_agg.density(&[0.0]).unwrap() > valley);
    assert!(kde_agg.density(&[8.0]).unwrap() > valley);
}

#[test]
fn aggregated_data_trains_a_usable_classifier() {
    // Train on aggregates only (60 pseudo-records for 600 raw rows) and
    // classify raw held-out points: far better than random.
    let raw = UciDataset::BreastCancer.generate(700, 41);
    let split = stratified_split(&raw, 0.3, 42).unwrap();
    let aggregated = aggregate_groups(
        &sorted_by_first_dim(&split.train),
        5,
        GroupLabelPolicy::Majority,
    )
    .unwrap();

    let model = DensityClassifier::fit(&aggregated, ClassifierConfig::error_adjusted(40)).unwrap();
    let report = evaluate(&model, &split.test).unwrap();
    assert!(
        report.accuracy() > 0.7,
        "aggregate-trained accuracy {}",
        report.accuracy()
    );
}

#[test]
fn mixed_pipeline_sources_compose() {
    // Aggregate, then classify aggregated records themselves.
    let raw = UciDataset::BreastCancer.generate(800, 51);
    let aggregated =
        aggregate_groups(&sorted_by_first_dim(&raw), 4, GroupLabelPolicy::Majority).unwrap();
    let split = stratified_split(&aggregated, 0.3, 52).unwrap();
    let model = DensityClassifier::fit(&split.train, ClassifierConfig::error_adjusted(30)).unwrap();
    let mut correct = 0;
    let mut n = 0;
    for p in split.test.iter() {
        if let Some(actual) = p.label() {
            n += 1;
            if model.classify(p).unwrap() == actual {
                correct += 1;
            }
        }
    }
    let acc = correct as f64 / n as f64;
    assert!(acc > 0.7, "aggregate-vs-aggregate accuracy {acc}");
}
