//! Minimal vendored stand-in for `criterion`, for this repository's
//! offline container.
//!
//! Supports the subset the bench crate uses: `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. Each
//! benchmark is auto-calibrated to a target sampling time and reports the
//! median per-iteration latency to stdout. There is no statistical
//! regression analysis or HTML report — the numbers are honest wall-clock
//! medians, which is what the repo's JSON perf trackers consume.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for a parameterized benchmark: `"function/parameter"`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Work-per-iteration declaration; reported as derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the closure under test; `iter` runs and times the routine.
pub struct Bencher {
    /// Median per-iteration time, filled in by `iter`.
    result: Option<Duration>,
    sample_count: usize,
    target_sample_time: Duration,
}

impl Bencher {
    fn new(sample_count: usize, target_sample_time: Duration) -> Self {
        Bencher {
            result: None,
            sample_count,
            target_sample_time,
        }
    }

    // `sample_count` and `iters_per_sample` are bounded (≤ 2²⁰) well
    // below u32::MAX, so the Duration-division casts cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count per sample that
        // fills a reasonable slice of the target sample time.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample_time / self.sample_count as u32
                || iters_per_sample >= 1 << 20
            {
                break;
            }
            iters_per_sample *= 2;
        }

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed() / iters_per_sample as u32);
        }
        samples.sort_unstable();
        self.result = Some(samples[samples.len() / 2]);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    fn report(&self, label: &str, median: Duration) {
        let mut line = format!("{}/{label}: median {}", self.name, format_duration(median));
        if let Some(tp) = self.throughput {
            let per_sec = |count: u64| count as f64 / median.as_secs_f64();
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  ({:.0} elem/s)", per_sec(n)));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  ({:.0} B/s)", per_sec(n)));
                }
            }
        }
        println!("{line}");
    }

    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Shrinks/extends how long each benchmark samples for.
    pub fn measurement_time(&mut self, time: Duration) {
        self.criterion.target_sample_time = time;
    }

    pub fn sample_size(&mut self, n: usize) {
        self.criterion.sample_count = n.max(3);
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into();
        let mut b = Bencher::new(
            self.criterion.sample_count,
            self.criterion.target_sample_time,
        );
        f(&mut b);
        let median = b.result.expect("bench_function closure must call iter()");
        self.report(&label, median);
        self.criterion
            .results
            .push((format!("{}/{label}", self.name), median));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label();
        let mut b = Bencher::new(
            self.criterion.sample_count,
            self.criterion.target_sample_time,
        );
        f(&mut b, input);
        let median = b.result.expect("bench_with_input closure must call iter()");
        self.report(&label, median);
        self.criterion
            .results
            .push((format!("{}/{label}", self.name), median));
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point handed to each `criterion_group!` target.
pub struct Criterion {
    sample_count: usize,
    target_sample_time: Duration,
    /// `(full label, median)` for every completed benchmark, for callers
    /// that want to dump machine-readable output after running.
    pub results: Vec<(String, Duration)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 11,
            target_sample_time: Duration::from_millis(600),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label: String = id.into();
        self.benchmark_group(label.clone())
            .bench_function("base", f);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            sample_count: 3,
            target_sample_time: Duration::from_millis(10),
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1 > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).label(), "f/32");
    }
}
