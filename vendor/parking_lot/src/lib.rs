//! Minimal vendored stand-in for `parking_lot`, for this repository's
//! offline container.
//!
//! Wraps `std::sync::Mutex` with parking_lot's non-poisoning API (the
//! subset the workspace uses: `new`, `lock`, `into_inner`). Poisoning is
//! translated by unwrapping into the inner data — consistent with
//! parking_lot, which has no poisoning at all.

/// A mutex with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, ignoring poisoning like parking_lot does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
