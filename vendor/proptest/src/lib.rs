//! Minimal vendored stand-in for `proptest`, for this repository's
//! offline container.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]` header),
//! range strategies over floats and integers, tuple strategies,
//! `collection::vec`, `option::of`, `prop_map`/`prop_flat_map`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! regressions: each test derives a deterministic RNG from its own name,
//! so failures reproduce exactly on re-run, which is what the test suite
//! actually relies on.

pub mod test_runner {
    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's inputs do not satisfy a `prop_assume!` precondition;
        /// the runner draws a fresh case without counting this one.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    /// Runner configuration. Only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic generator handed to strategies (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 random bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below: empty range");
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Drives one `#[test]` produced by the `proptest!` macro.
    pub struct TestRunner {
        config: Config,
        name: &'static str,
        seed: u64,
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    impl TestRunner {
        pub fn new(config: Config, name: &'static str) -> Self {
            let seed = fnv1a(name);
            TestRunner { config, name, seed }
        }

        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut accepted = 0u32;
            let mut attempts = 0u64;
            let max_attempts = u64::from(self.config.cases.max(1)) * 64;
            while accepted < self.config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest shim: too many rejected cases in `{}` \
                         ({accepted}/{} accepted after {attempts} attempts)",
                        self.name, self.config.cases
                    );
                }
                let mut rng =
                    TestRng::from_seed(self.seed ^ attempts.wrapping_mul(0xA076_1D64_78BD_642F));
                match case(&mut rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject(_)) => continue,
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "proptest case failed: {msg}\n    (test `{}`, attempt {attempts}; \
                         deterministic — re-running reproduces it)",
                        self.name
                    ),
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<W, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> W,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // below(n) < n = end - start, so the narrowing is exact.
                    #[allow(clippy::cast_possible_truncation)]
                    let offset = rng.below((self.end - self.start) as u64) as $t;
                    self.start + offset
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    // below(n + 1) <= n = hi - lo, so the narrowing is exact.
                    #[allow(clippy::cast_possible_truncation)]
                    let offset = rng.below((hi - lo) as u64 + 1) as $t;
                    lo + offset
                }
            }
        )*};
    }
    impl_strategy_int_range!(usize, u8, u16, u32, u64, i32, i64);

    /// A strategy that always yields the same (cloned) value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, W> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> W,
    {
        type Value = W;

        fn generate(&self, rng: &mut TestRng) -> W {
            (self.f)(self.base.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length bounds for [`vec`]. Built from `a..b` or `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max_inclusive - self.size.min + 1;
            // below(span) < span, which is a usize quantity already.
            #[allow(clippy::cast_possible_truncation)]
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `proptest::bool::ANY`: fair coin flips.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of`: `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Expands to one `#[test]` per case block, each running its body over
/// `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            #[test]
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new(
                    $config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                runner.run(|__proptest_rng| {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)` with `{:?}` diagnostics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// `prop_assume!(cond)`: reject the case (without failing) if `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..7.0, n in 2usize..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((2..9).contains(&n));
        }

        #[test]
        fn vec_lengths_and_tuples(
            rows in collection::vec((-1.0f64..1.0, 0.0f64..0.5), 3..10),
            (a, b) in (0u32..5, 10u32..20),
        ) {
            prop_assert!(rows.len() >= 3 && rows.len() < 10);
            prop_assert!(rows.iter().all(|&(v, e)| (-1.0..1.0).contains(&v) && e >= 0.0));
            prop_assert!(a < 5 && (10..20).contains(&b));
        }

        #[test]
        fn flat_map_links_sizes(v in (1usize..5).prop_flat_map(|d| {
            collection::vec(0.0f64..1.0, d..=d).prop_map(move |xs| (d, xs))
        })) {
            let (d, xs) = v;
            prop_assert_eq!(xs.len(), d);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let strat = option::of(0u32..10);
        let mut rng = crate::test_runner::TestRng::from_seed(99);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match crate::strategy::Strategy::generate(&strat, &mut rng) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0, "some={some} none={none}");
    }
}
