//! Minimal vendored stand-in for `rand`, for this repository's offline
//! container.
//!
//! Provides the subset the workspace uses: a deterministic seeded
//! [`rngs::StdRng`] (xoshiro256** initialized via splitmix64), the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits with `gen::<f64>()` and
//! `gen_range` over integer ranges, and [`seq::SliceRandom::shuffle`]
//! (Fisher–Yates). The streams differ from the real crate's — everything
//! downstream only requires determinism for a fixed seed, not
//! bit-compatibility with upstream rand.

/// Core random number generation: raw word output.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

mod private {
    /// Sealed helper: types `gen()` can produce.
    pub trait GenOutput {
        fn from_u64(word: u64) -> Self;
    }

    impl GenOutput for f64 {
        fn from_u64(word: u64) -> Self {
            // 53 random bits into [0, 1).
            (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl GenOutput for f32 {
        fn from_u64(word: u64) -> Self {
            (word >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl GenOutput for u64 {
        fn from_u64(word: u64) -> Self {
            word
        }
    }

    impl GenOutput for u32 {
        fn from_u64(word: u64) -> Self {
            (word >> 32) as u32
        }
    }

    impl GenOutput for bool {
        fn from_u64(word: u64) -> Self {
            word & 1 == 1
        }
    }

    /// Sealed helper: types `gen_range` can produce from a range.
    pub trait RangeSample: Sized {
        fn sample_range<R: super::RngCore + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi_exclusive: Self,
        ) -> Self;
    }

    macro_rules! impl_range_sample_uint {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn sample_range<R: super::RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi_exclusive: Self,
                ) -> Self {
                    assert!(lo < hi_exclusive, "gen_range: empty range");
                    let span = (hi_exclusive - lo) as u64;
                    // Multiply-shift bounded sampling; the tiny modulo bias
                    // is irrelevant for the shim's uses (index selection).
                    let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    lo + r as $t
                }
            }
        )*};
    }
    impl_range_sample_uint!(usize, u64, u32);

    impl RangeSample for f64 {
        fn sample_range<R: super::RngCore + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi_exclusive: Self,
        ) -> Self {
            assert!(lo < hi_exclusive, "gen_range: empty range");
            let u = <f64 as GenOutput>::from_u64(rng.next_u64());
            lo + u * (hi_exclusive - lo)
        }
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value; for floats, uniform in `[0, 1)`.
    fn gen<T: private::GenOutput>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// A uniformly random value in `lo..hi`.
    fn gen_range<T: private::RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256**, seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice utilities driven by an [`Rng`].
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_spans_all_indices() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
