//! Minimal vendored stand-in for `rayon`, for this repository's offline
//! container.
//!
//! Implements the indexed data-parallel subset the workspace uses —
//! `par_iter`/`into_par_iter` on slices and ranges, `par_chunks`, `map`,
//! `enumerate`, `collect`, `sum`, and [`join`] — over `std::thread::scope`
//! with contiguous index chunks whose results are merged **in index
//! order**. That ordering guarantee is load-bearing: parallel results are
//! bitwise-identical to their sequential counterparts (reductions run
//! sequentially over the ordered collected items), which the classifier's
//! determinism tests rely on.
//!
//! The work-stealing pool, splitting heuristics, and the rest of real
//! rayon's API are intentionally absent.

/// Number of worker threads the shim will use for a large-enough workload.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon shim: joined task panicked");
        (ra, rb)
    })
}

/// An indexed parallel iterator: a fixed-length sequence whose items can
/// be produced independently (and concurrently) by index.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    fn pi_len(&self) -> usize;

    /// Produces the `i`-th item. Called concurrently from worker threads.
    fn pi_get(&self, i: usize) -> Self::Item;

    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Runs the pipeline and collects items in index order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Deterministic sum: items are produced in parallel, then reduced
    /// sequentially in index order so float results match a serial loop.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        run_ordered(self).into_iter().sum()
    }

    /// Calls `f` on every item (no ordering guarantees between calls).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_ordered(self.map(f)).into_iter().for_each(drop);
    }
}

/// Conversion into a [`ParallelIterator`].
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// `collect()` target types.
pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        run_ordered(iter)
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter<I: ParallelIterator<Item = Result<T, E>>>(iter: I) -> Self {
        // All items run before the first error is reported, keeping which
        // error surfaces deterministic (the lowest-index one).
        run_ordered(iter).into_iter().collect()
    }
}

/// Executes the pipeline: contiguous index chunks across scoped threads,
/// results spliced back together in index order.
fn run_ordered<I: ParallelIterator>(iter: I) -> Vec<I::Item> {
    let len = iter.pi_len();
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return (0..len).map(|i| iter.pi_get(i)).collect();
    }
    let chunk = len.div_ceil(threads);
    let iter = &iter;
    let mut chunks: Vec<Vec<I::Item>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..len)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(len);
                s.spawn(move || (start..end).map(|i| iter.pi_get(i)).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim: worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(len);
    for c in &mut chunks {
        out.append(c);
    }
    out
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_get(&self, i: usize) -> Self::Item {
        &self.slice[i]
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over contiguous sub-slices of length `chunk`.
pub struct ChunksIter<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];

    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn pi_get(&self, i: usize) -> Self::Item {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.slice.len());
        &self.slice[start..end]
    }
}

/// `par_iter`/`par_chunks` on slice-like types (rayon spells these via
/// `IntoParallelRefIterator`; a single extension trait is enough here).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> SliceIter<'_, T>;
    fn par_chunks(&self, chunk: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }

    fn par_chunks(&self, chunk: usize) -> ChunksIter<'_, T> {
        assert!(chunk > 0, "par_chunks: chunk size must be non-zero");
        ChunksIter { slice: self, chunk }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> SliceIter<'_, T> {
        self.as_slice().par_iter()
    }

    fn par_chunks(&self, chunk: usize) -> ChunksIter<'_, T> {
        self.as_slice().par_chunks(chunk)
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn pi_len(&self) -> usize {
        self.len
    }

    fn pi_get(&self, i: usize) -> Self::Item {
        self.start + i
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeIter;

    fn into_par_iter(self) -> Self::Iter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, i: usize) -> Self::Item {
        (self.f)(self.base.pi_get(i))
    }
}

pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, i: usize) -> Self::Item {
        (i, self.base.pi_get(i))
    }
}

pub mod prelude {
    pub use super::{FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice};
}

pub mod iter {
    pub use super::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_is_bitwise_equal_to_sequential() {
        // Grouping-sensitive values: parallel chunked reduction would
        // differ; the shim reduces sequentially over ordered items.
        let v: Vec<f64> = (0..10_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let seq: f64 = v.iter().map(|x| x * 1.000001).sum();
        let par: f64 = v.par_iter().map(|x| x * 1.000001).sum();
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn ranges_chunks_and_enumerate() {
        let squares: Vec<usize> = (5..25usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (5..25).map(|i| i * i).collect::<Vec<_>>());

        let v: Vec<u32> = (0..103).collect();
        let chunk_sums: Vec<u32> = v.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(chunk_sums.len(), 11);
        assert_eq!(chunk_sums.iter().sum::<u32>(), v.iter().sum::<u32>());

        let idx: Vec<(usize, u32)> = v.par_iter().map(|&x| x).enumerate().collect();
        assert!(idx.iter().all(|&(i, x)| i as u32 == x));
    }

    #[test]
    fn result_collect_reports_lowest_index_error() {
        let items: Vec<usize> = (0..100).collect();
        let r: Result<Vec<usize>, usize> = items
            .par_iter()
            .map(|&x| if x % 30 == 29 { Err(x) } else { Ok(x) })
            .collect();
        assert_eq!(r, Err(29));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_sources_are_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
