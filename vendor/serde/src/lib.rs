//! Minimal vendored stand-in for `serde`, built for this repository's
//! offline container.
//!
//! The real serde crates cannot be fetched here (no network, no registry
//! cache), so this shim provides the subset the workspace actually uses:
//! `#[derive(Serialize, Deserialize)]` on non-generic structs and enums,
//! routed through a small JSON-like [`value::Value`] data model instead of
//! serde's visitor machinery. `serde_json` (also vendored) renders and
//! parses that model.
//!
//! Supported shapes: named-field structs, newtype/tuple structs, enums
//! with unit / newtype / tuple / struct variants (externally tagged, like
//! serde's default). Supported field types: the integer primitives,
//! `f32`/`f64`, `bool`, `String`, `Option<T>`, `Vec<T>`, fixed tuples and
//! nested derived types.

pub mod value {
    /// The JSON-like data model every `Serialize`/`Deserialize` impl
    /// round-trips through.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        /// Integer values that fit `i64`.
        Int(i64),
        /// Unsigned values above `i64::MAX`.
        UInt(u64),
        Float(f64),
        Str(String),
        Array(Vec<Value>),
        /// Insertion-ordered map (JSON object).
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// Human-readable kind name for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) | Value::UInt(_) => "integer",
                Value::Float(_) => "number",
                Value::Str(_) => "string",
                Value::Array(_) => "array",
                Value::Map(_) => "object",
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(m) => Some(m),
                _ => None,
            }
        }
    }
}

pub mod ser {
    use super::value::Value;

    /// Serialization into the [`Value`] data model.
    pub trait Serialize {
        fn to_value(&self) -> Value;
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn to_value(&self) -> Value {
            (**self).to_value()
        }
    }

    impl Serialize for bool {
        fn to_value(&self) -> Value {
            Value::Bool(*self)
        }
    }

    macro_rules! impl_ser_int {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::Int(*self as i64)
                }
            }
        )*};
    }
    impl_ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

    impl Serialize for u64 {
        fn to_value(&self) -> Value {
            if *self <= i64::MAX as u64 {
                Value::Int(*self as i64)
            } else {
                Value::UInt(*self)
            }
        }
    }

    impl Serialize for usize {
        fn to_value(&self) -> Value {
            (*self as u64).to_value()
        }
    }

    impl Serialize for f32 {
        fn to_value(&self) -> Value {
            Value::Float(f64::from(*self))
        }
    }

    impl Serialize for f64 {
        fn to_value(&self) -> Value {
            Value::Float(*self)
        }
    }

    impl Serialize for String {
        fn to_value(&self) -> Value {
            Value::Str(self.clone())
        }
    }

    impl Serialize for str {
        fn to_value(&self) -> Value {
            Value::Str(self.to_string())
        }
    }

    impl<T: Serialize> Serialize for Option<T> {
        fn to_value(&self) -> Value {
            match self {
                Some(v) => v.to_value(),
                None => Value::Null,
            }
        }
    }

    impl<T: Serialize> Serialize for Vec<T> {
        fn to_value(&self) -> Value {
            Value::Array(self.iter().map(Serialize::to_value).collect())
        }
    }

    impl<T: Serialize> Serialize for [T] {
        fn to_value(&self) -> Value {
            Value::Array(self.iter().map(Serialize::to_value).collect())
        }
    }

    impl<T: Serialize> Serialize for Box<T> {
        fn to_value(&self) -> Value {
            (**self).to_value()
        }
    }

    /// Maps serialize as an array of `[key, value]` pairs so non-string
    /// keys (tuples, newtypes) round-trip without a string encoding.
    impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
        fn to_value(&self) -> Value {
            Value::Array(
                self.iter()
                    .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                    .collect(),
            )
        }
    }

    macro_rules! impl_ser_tuple {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn to_value(&self) -> Value {
                    Value::Array(vec![$(self.$n.to_value()),+])
                }
            }
        )*};
    }
    impl_ser_tuple! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }
}

pub mod de {
    use super::value::Value;

    /// Deserialization error: a plain message chain.
    #[derive(Debug, Clone)]
    pub struct DeError(pub String);

    impl std::fmt::Display for DeError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for DeError {}

    impl DeError {
        pub fn expected(what: &str, got: &Value) -> Self {
            DeError(format!("expected {what}, got {}", got.kind()))
        }
    }

    /// Deserialization from the [`Value`] data model.
    pub trait Deserialize: Sized {
        fn from_value(v: &Value) -> Result<Self, DeError>;
    }

    /// Looks up `key` in a map and deserializes it. A missing key is
    /// treated as `null`, which lets `Option` fields tolerate absence
    /// (mirroring serde's `missing_field` behaviour) while everything else
    /// reports the missing field.
    pub fn field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, DeError> {
        match map.iter().find(|(k, _)| k == key) {
            Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("field `{key}`: {e}"))),
            None => {
                T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{key}`")))
            }
        }
    }

    impl Deserialize for bool {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            match v {
                Value::Bool(b) => Ok(*b),
                _ => Err(DeError::expected("bool", v)),
            }
        }
    }

    macro_rules! impl_de_signed {
        ($($t:ty),*) => {$(
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    match v {
                        Value::Int(i) => <$t>::try_from(*i)
                            .map_err(|_| DeError(format!("integer {i} out of range"))),
                        _ => Err(DeError::expected("integer", v)),
                    }
                }
            }
        )*};
    }
    impl_de_signed!(i8, i16, i32, i64, isize);

    macro_rules! impl_de_unsigned {
        ($($t:ty),*) => {$(
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    match v {
                        Value::Int(i) => <$t>::try_from(*i)
                            .map_err(|_| DeError(format!("integer {i} out of range"))),
                        Value::UInt(u) => <$t>::try_from(*u)
                            .map_err(|_| DeError(format!("integer {u} out of range"))),
                        _ => Err(DeError::expected("integer", v)),
                    }
                }
            }
        )*};
    }
    impl_de_unsigned!(u8, u16, u32, u64, usize);

    impl Deserialize for f64 {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            match v {
                Value::Float(f) => Ok(*f),
                Value::Int(i) => Ok(*i as f64),
                Value::UInt(u) => Ok(*u as f64),
                // serde_json serializes non-finite floats as null.
                Value::Null => Ok(f64::NAN),
                _ => Err(DeError::expected("number", v)),
            }
        }
    }

    impl Deserialize for f32 {
        // Narrowing is the point: f32 round-trips through the f64 JSON
        // number space, matching real serde's behaviour.
        #[allow(clippy::cast_possible_truncation)]
        fn from_value(v: &Value) -> Result<Self, DeError> {
            f64::from_value(v).map(|f| f as f32)
        }
    }

    impl Deserialize for String {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            match v {
                Value::Str(s) => Ok(s.clone()),
                _ => Err(DeError::expected("string", v)),
            }
        }
    }

    impl<T: Deserialize> Deserialize for Option<T> {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            match v {
                Value::Null => Ok(None),
                other => T::from_value(other).map(Some),
            }
        }
    }

    impl<T: Deserialize> Deserialize for Vec<T> {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            match v {
                Value::Array(items) => items.iter().map(T::from_value).collect(),
                _ => Err(DeError::expected("array", v)),
            }
        }
    }

    impl<T: Deserialize> Deserialize for Box<T> {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            T::from_value(v).map(Box::new)
        }
    }

    impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let entries = v
                .as_array()
                .ok_or_else(|| DeError::expected("array of [key, value] pairs", v))?;
            let mut out = std::collections::BTreeMap::new();
            for e in entries {
                let pair = e
                    .as_array()
                    .ok_or_else(|| DeError::expected("[key, value] pair", e))?;
                if pair.len() != 2 {
                    return Err(DeError(format!(
                        "expected [key, value] pair, got array of {}",
                        pair.len()
                    )));
                }
                out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
            }
            Ok(out)
        }
    }

    macro_rules! impl_de_tuple {
        ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
            impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    let a = v
                        .as_array()
                        .ok_or_else(|| DeError::expected("array (tuple)", v))?;
                    if a.len() != $len {
                        return Err(DeError(format!(
                            "expected tuple of {} elements, got {}",
                            $len,
                            a.len()
                        )));
                    }
                    Ok(($($t::from_value(&a[$n])?,)+))
                }
            }
        )*};
    }
    impl_de_tuple! {
        (1; 0 A)
        (2; 0 A, 1 B)
        (3; 0 A, 1 B, 2 C)
        (4; 0 A, 1 B, 2 C, 3 D)
    }
}

pub use de::{DeError, Deserialize};
pub use ser::Serialize;
pub use value::Value;

// The derive macros share the trait names, exactly like real serde's
// `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
