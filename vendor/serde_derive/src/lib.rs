//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde shim.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available in this offline container, so this implementation parses the
//! derive input token stream by hand. It supports exactly the shapes this
//! workspace uses: non-generic structs (unit, newtype, tuple, named) and
//! enums (unit, newtype, tuple, struct variants; externally tagged).
//! Attributes such as `#[default]` and doc comments are skipped.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    UnitStruct,
    NewtypeStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<String>),
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes a leading run of attributes (`#[...]`, which is how doc
/// comments arrive too) and an optional visibility qualifier.
fn skip_attrs_and_vis(iter: &mut TokenIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("expected [...] after #, got {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // `pub(crate)`, `pub(super)`, ...
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Counts the top-level comma-separated segments of a token stream,
/// ignoring commas nested inside `<...>` (groups are atomic token trees,
/// so parens/brackets need no tracking). Tolerates a trailing comma.
fn count_top_level_segments(stream: TokenStream) -> usize {
    let mut segments = 0usize;
    let mut seg_has_tokens = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                seg_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                seg_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if seg_has_tokens {
                    segments += 1;
                }
                seg_has_tokens = false;
            }
            _ => seg_has_tokens = true,
        }
    }
    if seg_has_tokens {
        segments += 1;
    }
    segments
}

/// Parses `name: Type, ...` field lists (struct bodies and struct-variant
/// bodies). Only the names are needed — field types are recovered by
/// inference at the construction site in generated code.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_segments(g.stream());
                iter.next();
                if n == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(n)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic type `{name}`");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match iter.next() {
            None => Shape::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_top_level_segments(g.stream()) {
                    1 => Shape::NewtypeStruct,
                    n => Shape::TupleStruct(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            other => panic!("unexpected struct body: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, got {other:?}"),
        },
        kw => panic!("cannot derive for `{kw}` items"),
    };
    (name, shape)
}

fn named_fields_to_value(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::ser::Serialize::to_value({prefix}{f}))"))
        .collect();
    format!("::serde::value::Value::Map(vec![{}])", entries.join(", "))
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::NewtypeStruct => "::serde::ser::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::ser::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => named_fields_to_value(fields, "&self."),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::value::Value::Str(\"{vname}\".to_string())"
                        ),
                        VariantKind::Newtype => format!(
                            "{name}::{vname}(x0) => ::serde::value::Value::Map(vec![(\"{vname}\".to_string(), ::serde::ser::Serialize::to_value(x0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::ser::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::value::Value::Map(vec![(\"{vname}\".to_string(), ::serde::value::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inner = named_fields_to_value(fields, "");
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::value::Value::Map(vec![(\"{vname}\".to_string(), {inner})])",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

fn named_fields_from_map(fields: &[String], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de::field({map_expr}, \"{f}\")?"))
        .collect();
    inits.join(", ")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::UnitStruct => format!(
            "match v {{\n\
                 ::serde::value::Value::Null => Ok({name}),\n\
                 other => Err(::serde::de::DeError::expected(\"null (unit struct)\", other)),\n\
             }}"
        ),
        Shape::NewtypeStruct => {
            format!("Ok({name}(::serde::de::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::Deserialize::from_value(&a[{i}])?"))
                .collect();
            format!(
                "let a = v.as_array().ok_or_else(|| ::serde::de::DeError::expected(\"array\", v))?;\n\
                 if a.len() != {n} {{\n\
                     return Err(::serde::de::DeError(format!(\"expected {n} elements, got {{}}\", a.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::NamedStruct(fields) => format!(
            "let m = v.as_map().ok_or_else(|| ::serde::de::DeError::expected(\"object\", v))?;\n\
             Ok({name} {{ {} }})",
            named_fields_from_map(fields, "m")
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Newtype => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::de::Deserialize::from_value(inner)?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::de::Deserialize::from_value(&a[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let a = inner.as_array().ok_or_else(|| ::serde::de::DeError::expected(\"array\", inner))?;\n\
                                     if a.len() != {n} {{\n\
                                         return Err(::serde::de::DeError(format!(\"variant {vname}: expected {n} elements, got {{}}\", a.len())));\n\
                                     }}\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => Some(format!(
                            "\"{vname}\" => {{\n\
                                 let m = inner.as_map().ok_or_else(|| ::serde::de::DeError::expected(\"object\", inner))?;\n\
                                 Ok({name}::{vname} {{ {} }})\n\
                             }}",
                            named_fields_from_map(fields, "m")
                        )),
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::value::Value::Str(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => Err(::serde::de::DeError(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::value::Value::Map(m) if m.len() == 1 => {{\n\
                         let (tag, inner) = &m[0];\n\
                         match tag.as_str() {{\n\
                             {tagged}\n\
                             other => Err(::serde::de::DeError(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::de::DeError::expected(\"enum representation\", other)),\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                tagged = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(",\n"))
                },
            )
        }
    };
    format!(
        "impl ::serde::de::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::de::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
