//! Minimal vendored stand-in for `serde_json`, paired with the vendored
//! `serde` shim.
//!
//! Provides exactly the API surface this workspace uses — `to_string`,
//! `from_str`, `to_writer`, `from_reader` — over the shim's
//! [`serde::Value`] data model. Floats are written with `{:?}` (Rust's
//! shortest round-trippable representation); non-finite floats serialize
//! as `null`, matching serde_json. The parser is a strict recursive
//! descent that rejects trailing input and malformed documents.

use serde::{DeError, Deserialize, Serialize, Value};

/// Error type for serialization and deserialization failures.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("io error: {e}"))
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                // serde_json has no representation for NaN/inf.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            // Integer too large for 64 bits: fall back to float like
            // serde_json's arbitrary-precision-off mode.
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
        }
    }
}

/// Parses a JSON document into the value model, rejecting trailing input.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

/// Deserializes `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

/// Deserializes `T` from a reader (reads to end first; the documents this
/// workspace exchanges are small snapshots).
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_collections() {
        let v = vec![(1u64, -2.5f64), (3u64, 4.0f64)];
        let s = to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &f in &[0.1, 1.0 / 3.0, 1e-300, -2.5e17, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{s}");
        }
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        let s = to_string(&f64::INFINITY).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<f64>("{bad").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{0001}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn options_tolerate_null_and_missing() {
        let some: Option<u32> = from_str("7").unwrap();
        assert_eq!(some, Some(7));
        let none: Option<u32> = from_str("null").unwrap();
        assert_eq!(none, None);
    }
}
